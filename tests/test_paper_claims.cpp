// End-to-end checks of the paper's qualitative claims (the "shape" of every
// figure), using the full Analyzer at the section-6 baseline. These are the
// assertions EXPERIMENTS.md reports against.
#include <algorithm>
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "rebuild/planner.hpp"

namespace nsrel::core {
namespace {

const ReliabilityTarget kTarget = ReliabilityTarget::paper();

Analyzer baseline_analyzer() { return Analyzer(SystemConfig::baseline()); }

// --- Figure 13: baseline comparison, observations 1-3 ---

TEST(Figure13, Observation1_FaultTolerance1MissesTarget) {
  const Analyzer analyzer = baseline_analyzer();
  for (const InternalScheme scheme :
       {InternalScheme::kNone, InternalScheme::kRaid5,
        InternalScheme::kRaid6}) {
    const double events = analyzer.events_per_pb_year({scheme, 1});
    EXPECT_FALSE(kTarget.met_by(events)) << scheme_name(scheme);
  }
  // Without internal RAID the miss is catastrophic (hard errors during
  // single-failure rebuilds); with internal RAID, node failures alone
  // still put FT1 several-fold above the target.
  EXPECT_GT(analyzer.events_per_pb_year({InternalScheme::kNone, 1}),
            100.0 * kTarget.events_per_pb_year);
  EXPECT_GT(analyzer.events_per_pb_year({InternalScheme::kRaid5, 1}),
            2.0 * kTarget.events_per_pb_year);
}

TEST(Figure13, Observation2_Raid6NoBetterThanRaid5AtFt2Plus) {
  const Analyzer analyzer = baseline_analyzer();
  for (int ft = 2; ft <= 3; ++ft) {
    const double raid5 =
        analyzer.events_per_pb_year({InternalScheme::kRaid5, ft});
    const double raid6 =
        analyzer.events_per_pb_year({InternalScheme::kRaid6, ft});
    // "No significant difference": within ~2x of each other, not orders.
    EXPECT_GT(raid6 / raid5, 0.5) << "ft=" << ft;
    EXPECT_LT(raid6 / raid5, 2.0) << "ft=" << ft;
  }
}

TEST(Figure13, Observation3_Ft3InternalRaidExceedsTargetByFiveOrders) {
  const Analyzer analyzer = baseline_analyzer();
  const double events =
      analyzer.events_per_pb_year({InternalScheme::kRaid5, 3});
  const double headroom = kTarget.events_per_pb_year / events;
  EXPECT_GT(headroom, 1e4);  // at least 4-5 orders of magnitude
}

TEST(Figure13, SurvivingConfigurationsMeetOrNearTarget) {
  // Section 8's conclusion: FT2+IR5 and FT3+NIR meet the requirement at
  // baseline (rebuild block 128 KB >= 64 KB).
  const Analyzer analyzer = baseline_analyzer();
  EXPECT_TRUE(kTarget.met_by(
      analyzer.events_per_pb_year({InternalScheme::kRaid5, 2})));
  EXPECT_TRUE(kTarget.met_by(
      analyzer.events_per_pb_year({InternalScheme::kNone, 3})));
}

TEST(Figure13, InternalRaidBeatsNoRaidAtEqualNodeFaultTolerance) {
  const Analyzer analyzer = baseline_analyzer();
  for (int ft = 1; ft <= 3; ++ft) {
    EXPECT_LT(analyzer.events_per_pb_year({InternalScheme::kRaid5, ft}),
              analyzer.events_per_pb_year({InternalScheme::kNone, ft}))
        << "ft=" << ft;
  }
}

// --- Figure 14/15: MTTF sensitivities ---

TEST(Figure14, Ft2NirMissesTargetAtLowNodeMttf) {
  SystemConfig config = SystemConfig::baseline();
  config.node_mttf = Hours(100'000.0);
  const Analyzer analyzer{config};
  // "does not meet the target at all for low node MTTF" across the drive
  // MTTF range.
  for (const double drive_mttf : {100'000.0, 300'000.0, 750'000.0}) {
    SystemConfig c = config;
    c.drive.mttf = Hours(drive_mttf);
    EXPECT_FALSE(kTarget.met_by(
        Analyzer{c}.events_per_pb_year({InternalScheme::kNone, 2})))
        << drive_mttf;
  }
}

TEST(Figure14, Ft2InternalRaidInsensitiveToDriveMttfAtLowNodeMttf) {
  // "FT 2, Internal RAID 5 appears to be relatively insensitive to drive
  // MTTF, especially for low node MTTF".
  SystemConfig low = SystemConfig::baseline();
  low.node_mttf = Hours(100'000.0);
  low.drive.mttf = Hours(100'000.0);
  SystemConfig high = low;
  high.drive.mttf = Hours(750'000.0);
  const double worst =
      Analyzer{low}.events_per_pb_year({InternalScheme::kRaid5, 2});
  const double best =
      Analyzer{high}.events_per_pb_year({InternalScheme::kRaid5, 2});
  EXPECT_LT(worst / best, 5.0);  // < one order of magnitude across the range
}

TEST(Figure14, Ft3NirIsSensitiveToDriveMttf) {
  // Without internal RAID, drive failures dominate: the drive-MTTF sweep
  // moves FT3-NIR by orders of magnitude.
  SystemConfig bad = SystemConfig::baseline();
  bad.drive.mttf = Hours(100'000.0);
  SystemConfig good = SystemConfig::baseline();
  good.drive.mttf = Hours(750'000.0);
  const double worst =
      Analyzer{bad}.events_per_pb_year({InternalScheme::kNone, 3});
  const double best =
      Analyzer{good}.events_per_pb_year({InternalScheme::kNone, 3});
  EXPECT_GT(worst / best, 30.0);
}

TEST(Figure15, Ft2InternalRaidMostSensitiveToNodeMttf) {
  // "FT 2, Internal RAID 5 shows the most sensitivity to node MTTF".
  const auto span = [](InternalScheme scheme, int ft) {
    SystemConfig low = SystemConfig::baseline();
    low.node_mttf = Hours(100'000.0);
    SystemConfig high = SystemConfig::baseline();
    high.node_mttf = Hours(1'000'000.0);
    return Analyzer{low}.events_per_pb_year({scheme, ft}) /
           Analyzer{high}.events_per_pb_year({scheme, ft});
  };
  const double ir5_span = span(InternalScheme::kRaid5, 2);
  const double nir2_span = span(InternalScheme::kNone, 2);
  const double nir3_span = span(InternalScheme::kNone, 3);
  EXPECT_GT(ir5_span, nir2_span);
  EXPECT_GT(ir5_span, nir3_span);
  EXPECT_GT(ir5_span, 10.0);  // strongly node-MTTF-bound
}

// --- Figure 16: rebuild block size ---

TEST(Figure16, LargerRebuildBlocksImproveReliability) {
  double previous = 1e300;
  for (const double kb : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    SystemConfig c = SystemConfig::baseline();
    c.rebuild_command = kilobytes(kb);
    const double events =
        Analyzer{c}.events_per_pb_year({InternalScheme::kNone, 3});
    EXPECT_LT(events, previous) << kb;
    previous = events;
  }
}

TEST(Figure16, SurvivorsMeetTargetAt64KbAndAbove) {
  // "The other two configurations meet the target if the rebuild block
  // size is 64 KB or larger."
  for (const double kb : {64.0, 128.0, 256.0, 1024.0}) {
    SystemConfig c = SystemConfig::baseline();
    c.rebuild_command = kilobytes(kb);
    const Analyzer analyzer{c};
    EXPECT_TRUE(kTarget.met_by(
        analyzer.events_per_pb_year({InternalScheme::kRaid5, 2})))
        << kb;
    EXPECT_TRUE(kTarget.met_by(
        analyzer.events_per_pb_year({InternalScheme::kNone, 3})))
        << kb;
  }
}

TEST(Figure16, TinyBlocksBreakEvenTheStrongConfigurations) {
  SystemConfig c = SystemConfig::baseline();
  c.rebuild_command = kilobytes(4.0);
  c.restripe_command = kilobytes(4.0);
  const Analyzer analyzer{c};
  EXPECT_FALSE(kTarget.met_by(
      analyzer.events_per_pb_year({InternalScheme::kNone, 3})));
}

// --- Figure 17: link speed ---

TEST(Figure17, NoDifferenceBetween5And10Gbps) {
  SystemConfig five = SystemConfig::baseline();
  five.link.raw_speed = gigabits_per_second(5.0);
  SystemConfig ten = SystemConfig::baseline();
  ten.link.raw_speed = gigabits_per_second(10.0);
  for (const auto& config : sensitivity_configurations()) {
    EXPECT_DOUBLE_EQ(Analyzer{five}.events_per_pb_year(config),
                     Analyzer{ten}.events_per_pb_year(config))
        << name(config);
  }
}

TEST(Figure17, OneGbpsIsWorseThanFive) {
  SystemConfig one = SystemConfig::baseline();
  one.link.raw_speed = gigabits_per_second(1.0);
  SystemConfig five = SystemConfig::baseline();
  five.link.raw_speed = gigabits_per_second(5.0);
  for (const auto& config : sensitivity_configurations()) {
    EXPECT_GT(Analyzer{one}.events_per_pb_year(config),
              2.0 * Analyzer{five}.events_per_pb_year(config))
        << name(config);
  }
}

// --- Figures 18-20: configurable size parameters ---

TEST(Figure18, NodeSetSizeHasLimitedEffectOnInternalRaid) {
  // "FT 2, No Internal RAID shows some sensitivity to the node set size,
  // but the other two configurations are relatively insensitive to it."
  const auto events_at = [](int n, const Configuration& config) {
    SystemConfig c = SystemConfig::baseline();
    c.node_set_size = n;
    return Analyzer{c}.events_per_pb_year(config);
  };
  for (const auto& config : {Configuration{InternalScheme::kRaid5, 2},
                             Configuration{InternalScheme::kNone, 3}}) {
    const double at_16 = events_at(16, config);
    const double at_128 = events_at(128, config);
    const double span = std::max(at_16, at_128) / std::min(at_16, at_128);
    EXPECT_LT(span, 10.0) << name(config);  // less than one order
  }
}

TEST(Figure19, LargerRedundancySetsAreLessReliable) {
  // "all configurations appear to become less reliable as the redundancy
  // set size increases, with about an order of magnitude difference
  // between the extremes."
  for (const auto& config : sensitivity_configurations()) {
    SystemConfig small = SystemConfig::baseline();
    small.redundancy_set_size = 6;
    SystemConfig large = SystemConfig::baseline();
    large.redundancy_set_size = 16;
    const double at_small = Analyzer{small}.events_per_pb_year(config);
    const double at_large = Analyzer{large}.events_per_pb_year(config);
    EXPECT_GT(at_large, at_small) << name(config);
    EXPECT_LT(at_large / at_small, 100.0) << name(config);  // ~1 order
  }
}

TEST(Figure20, DrivesPerNodeHasLittleEffect) {
  // Normalized reliability barely moves with d: the cancellation effect
  // the paper describes (more drives per node -> fewer nodes per PB).
  for (const auto& config : sensitivity_configurations()) {
    double lo = 1e300;
    double hi = 0.0;
    for (const int d : {6, 9, 12, 18, 24}) {
      SystemConfig c = SystemConfig::baseline();
      c.drives_per_node = d;
      const double events = Analyzer{c}.events_per_pb_year(config);
      lo = std::min(lo, events);
      hi = std::max(hi, events);
    }
    EXPECT_LT(hi / lo, 30.0) << name(config);
  }
}

// --- Section 8 discussion ---

TEST(Section8, BalancedProtectionArgument) {
  // "increasing the protection for one without correspondingly increasing
  // it for the other does not result in an overall increase in
  // reliability": with internal RAID 5 at FT2, upgrading the internal
  // scheme to RAID 6 moves events/PB-yr by <2x, while adding a node fault
  // tolerance level moves it by >100x.
  const Analyzer analyzer = baseline_analyzer();
  const double base = analyzer.events_per_pb_year({InternalScheme::kRaid5, 2});
  const double deeper_internal =
      analyzer.events_per_pb_year({InternalScheme::kRaid6, 2});
  const double deeper_node =
      analyzer.events_per_pb_year({InternalScheme::kRaid5, 3});
  EXPECT_GT(deeper_internal / base, 0.5);
  EXPECT_LT(deeper_internal / base, 2.0);
  EXPECT_LT(deeper_node / base, 0.01);
}

TEST(Section8, RebuildConstrainedByDrivesAboveThreeGbps) {
  const rebuild::RebuildPlanner planner =
      baseline_analyzer().planner(2);
  const double crossover_gbps = planner.link_speed_crossover().value() / 1e9;
  EXPECT_GT(crossover_gbps, 2.0);
  EXPECT_LT(crossover_gbps, 4.5);
}

}  // namespace
}  // namespace nsrel::core
