// Tests for the section-5.1 rebuild-rate model: drive service times, link
// throughput, flow accounting and the disk/network bottleneck crossover.
#include <gtest/gtest.h>

#include "rebuild/degraded.hpp"
#include "rebuild/drive_model.hpp"
#include "rebuild/link_model.hpp"
#include "rebuild/planner.hpp"
#include "util/assert.hpp"

namespace nsrel::rebuild {
namespace {

RebuildParams baseline_params() {
  return RebuildParams{};  // defaults are the paper's section-6 baseline
}

TEST(DriveModel, EffectiveRateMatchesServiceTimeModel) {
  const DriveModel drive{DriveParams{}};
  // 128 KiB: 1/150 s seek + 131072/40e6 s transfer.
  const double expected_time = 1.0 / 150.0 + 131072.0 / 40e6;
  EXPECT_NEAR(drive.command_time(kilobytes(128.0)).value(), expected_time,
              1e-12);
  EXPECT_NEAR(drive.effective_rate(kilobytes(128.0)).value(),
              131072.0 / expected_time, 1e-6);
}

TEST(DriveModel, EffectiveRateIncreasesWithCommandSize) {
  const DriveModel drive{DriveParams{}};
  double previous = 0.0;
  for (const double kb : {4.0, 16.0, 64.0, 128.0, 512.0, 1024.0}) {
    const double rate = drive.effective_rate(kilobytes(kb)).value();
    EXPECT_GT(rate, previous) << kb << " KiB";
    previous = rate;
  }
}

TEST(DriveModel, EffectiveRateSaturatesTowardSustained) {
  const DriveModel drive{DriveParams{}};
  EXPECT_LT(drive.effective_rate(megabytes(64.0)).value(), 40e6);
  EXPECT_GT(drive.effective_rate(megabytes(64.0)).value(), 0.9 * 40e6);
  EXPECT_NEAR(drive.efficiency(megabytes(64.0)), 1.0, 0.1);
}

TEST(DriveModel, SmallCommandsAreSeekBound) {
  const DriveModel drive{DriveParams{}};
  // At 4 KiB, throughput is close to B * IOPS.
  const double rate = drive.effective_rate(kilobytes(4.0)).value();
  EXPECT_NEAR(rate, 4096.0 * 150.0, 0.02 * 4096.0 * 150.0);
}

TEST(DriveModel, FailureRateAndHardErrors) {
  const DriveModel drive{DriveParams{}};
  EXPECT_DOUBLE_EQ(drive.failure_rate().value(), 1.0 / 300'000.0);
  // Reading a full 300 GB drive at HER 8e-14/byte: p = 0.024.
  EXPECT_DOUBLE_EQ(drive.hard_error_probability(gigabytes(300.0)), 0.024);
}

TEST(DriveModel, RejectsInvalidParams) {
  DriveParams bad;
  bad.max_iops = 0.0;
  EXPECT_THROW(DriveModel{bad}, ContractViolation);
  DriveParams negative_her;
  negative_her.her_per_byte = -1.0;
  EXPECT_THROW(DriveModel{negative_her}, ContractViolation);
}

TEST(LinkModel, PaperBaselineSustainedRate) {
  const LinkModel link{LinkParams{}};
  // 10 Gb/s raw at 64% efficiency = 800 MB/s, as quoted in section 6.
  EXPECT_NEAR(link.sustained().value(), 800e6, 1.0);
}

TEST(LinkModel, ScalesLinearlyWithRawSpeed) {
  LinkParams one;
  one.raw_speed = gigabits_per_second(1.0);
  const LinkModel link{one};
  EXPECT_NEAR(link.sustained().value(), 80e6, 1.0);
}

TEST(LinkModel, RejectsInvalidEfficiency) {
  LinkParams bad;
  bad.efficiency = 0.0;
  EXPECT_THROW(LinkModel{bad}, ContractViolation);
  bad.efficiency = 1.5;
  EXPECT_THROW(LinkModel{bad}, ContractViolation);
}

TEST(Planner, FlowAccountingMatchesSection51) {
  // N=64, R=8, t=2: rebuilt 1/63, received/sourced 6/63, in+out 12/63,
  // disk traffic 7/63, interconnect total 6.
  const RebuildPlanner planner(baseline_params());
  const DataFlows f = planner.flows();
  EXPECT_DOUBLE_EQ(f.rebuilt_per_node, 1.0 / 63.0);
  EXPECT_DOUBLE_EQ(f.received_per_node, 6.0 / 63.0);
  EXPECT_DOUBLE_EQ(f.sourced_per_node, 6.0 / 63.0);
  EXPECT_DOUBLE_EQ(f.node_network_inout, 12.0 / 63.0);
  EXPECT_DOUBLE_EQ(f.node_disk_traffic, 7.0 / 63.0);
  EXPECT_DOUBLE_EQ(f.interconnect_total, 6.0);
}

TEST(Planner, FlowConservation) {
  // Total received across survivors equals total sourced (section 5.1).
  for (int t = 1; t <= 3; ++t) {
    RebuildParams p = baseline_params();
    p.fault_tolerance = t;
    const DataFlows f = RebuildPlanner(p).flows();
    const double survivors = p.node_set_size - 1;
    EXPECT_NEAR(f.received_per_node * survivors, f.interconnect_total, 1e-12);
    EXPECT_NEAR(f.sourced_per_node * survivors, f.interconnect_total, 1e-12);
  }
}

TEST(Planner, NodeDataAccounting) {
  const RebuildPlanner planner(baseline_params());
  EXPECT_DOUBLE_EQ(planner.node_data().value(), 12.0 * 3e11 * 0.75);
  EXPECT_DOUBLE_EQ(planner.drive_data().value(), 3e11 * 0.75);
}

TEST(Planner, BaselineIsDiskBound) {
  // Paper: at 10 Gb/s the rebuild is constrained by the drives.
  const RebuildPlanner planner(baseline_params());
  EXPECT_GT(planner.node_disk_time().value(),
            planner.node_network_time().value());
  EXPECT_EQ(planner.rates().node_bottleneck, Bottleneck::kDisk);
}

TEST(Planner, OneGigabitIsNetworkBound) {
  RebuildParams p = baseline_params();
  p.link.raw_speed = gigabits_per_second(1.0);
  const RebuildPlanner planner(p);
  EXPECT_EQ(planner.rates().node_bottleneck, Bottleneck::kNetwork);
}

TEST(Planner, CrossoverNearThreeGigabit) {
  // Paper: "constrained by the link speed up to around 3 Gb/s".
  const RebuildPlanner planner(baseline_params());
  const double crossover_gbps =
      planner.link_speed_crossover().value() / 1e9;
  EXPECT_GT(crossover_gbps, 2.0);
  EXPECT_LT(crossover_gbps, 4.5);
}

TEST(Planner, CrossoverIsConsistent) {
  // Just below the crossover: network-bound; just above: disk-bound.
  const RebuildPlanner baseline(baseline_params());
  const double crossover = baseline.link_speed_crossover().value();
  RebuildParams below = baseline_params();
  below.link.raw_speed = BitsPerSecond(crossover * 0.95);
  RebuildParams above = baseline_params();
  above.link.raw_speed = BitsPerSecond(crossover * 1.05);
  EXPECT_EQ(RebuildPlanner(below).rates().node_bottleneck,
            Bottleneck::kNetwork);
  EXPECT_EQ(RebuildPlanner(above).rates().node_bottleneck, Bottleneck::kDisk);
}

TEST(Planner, RatesAboveCrossoverAreLinkInsensitive) {
  // Figure 17: no reliability difference between 5 and 10 Gb/s.
  RebuildParams five = baseline_params();
  five.link.raw_speed = gigabits_per_second(5.0);
  RebuildParams ten = baseline_params();
  ten.link.raw_speed = gigabits_per_second(10.0);
  EXPECT_DOUBLE_EQ(RebuildPlanner(five).rates().node_rebuild_rate.value(),
                   RebuildPlanner(ten).rates().node_rebuild_rate.value());
}

TEST(Planner, DriveRebuildIsDTimesFaster) {
  const RebuildPlanner planner(baseline_params());
  const RebuildRates r = planner.rates();
  EXPECT_NEAR(r.drive_rebuild_rate.value(),
              12.0 * r.node_rebuild_rate.value(), 1e-9);
}

TEST(Planner, BaselineRatesAreInExpectedRanges) {
  const RebuildPlanner planner(baseline_params());
  const RebuildRates r = planner.rates();
  // Node rebuild ~5.3 hours at baseline (disk-bound).
  EXPECT_NEAR(to_hours(r.node_rebuild_time).value(), 5.27, 0.3);
  // Re-stripe ~39 hours (2 * 225 GB per drive at ~3.2 MB/s).
  EXPECT_NEAR(to_hours(r.restripe_time).value(), 39.0, 3.0);
  // Rates are reciprocals.
  EXPECT_NEAR(r.node_rebuild_rate.value(),
              1.0 / to_hours(r.node_rebuild_time).value(), 1e-12);
  EXPECT_NEAR(r.restripe_rate.value(),
              1.0 / to_hours(r.restripe_time).value(), 1e-12);
}

TEST(Planner, LargerRebuildCommandsSpeedUpRebuild) {
  // Figure 16's mechanism: bigger blocks -> higher effective drive rate.
  double previous_rate = 0.0;
  for (const double kb : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    RebuildParams p = baseline_params();
    p.rebuild_command = kilobytes(kb);
    const double rate = RebuildPlanner(p).rates().node_rebuild_rate.value();
    EXPECT_GT(rate, previous_rate) << kb << " KiB";
    previous_rate = rate;
  }
}

TEST(Planner, HigherFaultToleranceMovesLessData) {
  // R-t inputs per stripe: higher t means fewer survivors must be read.
  RebuildParams t1 = baseline_params();
  t1.fault_tolerance = 1;
  RebuildParams t3 = baseline_params();
  t3.fault_tolerance = 3;
  EXPECT_GT(RebuildPlanner(t3).rates().node_rebuild_rate.value(),
            RebuildPlanner(t1).rates().node_rebuild_rate.value());
}

TEST(Degraded, BaselineImpactValues) {
  DegradedParams p;
  p.rebuild = baseline_params();
  const DegradedImpact impact = DegradedModel(p).impact();
  // 10% reserved for rebuild.
  EXPECT_DOUBLE_EQ(impact.foreground_share, 0.90);
  // 1 + (R-t-1)/N = 1 + 5/64.
  EXPECT_NEAR(impact.read_amplification, 1.0 + 5.0 / 64.0, 1e-12);
  // 64 node failures/400kh x 5.27h + 768 drive failures/300kh x 0.44h
  // ~= 0.00197 of calendar time rebuilding.
  EXPECT_NEAR(impact.rebuilding_fraction, 0.00197, 0.0003);
  // Net long-run throughput loss is a fraction of a percent.
  EXPECT_GT(impact.throughput_efficiency, 0.999);
  EXPECT_LT(impact.throughput_efficiency, 1.0);
}

TEST(Degraded, MatchesAvailabilityDegradedFraction) {
  // The rebuilding fraction computed here agrees with the stationary
  // degraded occupancy of the availability chain (same physics, two
  // derivations) — cross-checked in test_availability at ~0.2%.
  DegradedParams p;
  p.rebuild = baseline_params();
  const DegradedImpact impact = DegradedModel(p).impact();
  EXPECT_GT(impact.rebuilding_fraction, 0.001);
  EXPECT_LT(impact.rebuilding_fraction, 0.01);
}

TEST(Degraded, WorseHardwareMeansMoreRebuilding) {
  DegradedParams good;
  good.rebuild = baseline_params();
  DegradedParams bad = good;
  bad.node_mttf = Hours(100'000.0);
  bad.rebuild.drive.mttf = Hours(100'000.0);
  const double good_fraction = DegradedModel(good).impact().rebuilding_fraction;
  const double bad_fraction = DegradedModel(bad).impact().rebuilding_fraction;
  EXPECT_GT(bad_fraction, 2.5 * good_fraction);
  EXPECT_LT(DegradedModel(bad).impact().throughput_efficiency,
            DegradedModel(good).impact().throughput_efficiency);
}

TEST(Degraded, BiggerRebuildBudgetTradesForegroundForExposure) {
  // Doubling the rebuild bandwidth fraction halves rebuild windows but
  // takes twice the bandwidth while they run.
  DegradedParams narrow;
  narrow.rebuild = baseline_params();
  DegradedParams wide = narrow;
  wide.rebuild.rebuild_bandwidth_fraction = 0.20;
  const DegradedImpact n_impact = DegradedModel(narrow).impact();
  const DegradedImpact w_impact = DegradedModel(wide).impact();
  EXPECT_LT(w_impact.foreground_share, n_impact.foreground_share);
  EXPECT_LT(w_impact.rebuilding_fraction, n_impact.rebuilding_fraction);
}

TEST(Planner, RejectsInvalidConfigurations) {
  RebuildParams p = baseline_params();
  p.fault_tolerance = 8;  // t >= R
  EXPECT_THROW(RebuildPlanner{p}, ContractViolation);
  p = baseline_params();
  p.node_set_size = 1;
  EXPECT_THROW(RebuildPlanner{p}, ContractViolation);
  p = baseline_params();
  p.rebuild_bandwidth_fraction = 0.0;
  EXPECT_THROW(RebuildPlanner{p}, ContractViolation);
}

}  // namespace
}  // namespace nsrel::rebuild
