// Unit and property tests for the dense linear algebra substrate.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nsrel::linalg {
namespace {

Matrix random_matrix(std::size_t n, Xoshiro256& rng, double scale = 1.0) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = (rng.uniform() - 0.5) * 2.0 * scale;
    }
  }
  // Diagonal dominance guarantees invertibility for property tests.
  for (std::size_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n) * scale;
  return m;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, InitializerListRejectsRaggedRows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, OutOfBoundsIndexingThrows) {
  const Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), ContractViolation);
  EXPECT_THROW((void)m(0, 2), ContractViolation);
}

TEST(Matrix, IdentityMultiplication) {
  Xoshiro256 rng(1);
  const Matrix a = random_matrix(4, rng);
  const Matrix i = Matrix::identity(4);
  const Matrix left = i * a;
  const Matrix right = a * i;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(left(r, c), a(r, c));
      EXPECT_DOUBLE_EQ(right(r, c), a(r, c));
    }
  }
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(3, 3);
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW((void)a.multiply(Matrix(3, 2)), ContractViolation);
}

TEST(Matrix, MultiplyKnownValues) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector v{1.0, 1.0};
  const Vector result = a.multiply(v);
  EXPECT_DOUBLE_EQ(result[0], 3.0);
  EXPECT_DOUBLE_EQ(result[1], 7.0);
}

TEST(Matrix, TransposeInvolution) {
  Xoshiro256 rng(2);
  const Matrix a = random_matrix(5, rng);
  const Matrix att = a.transpose().transpose();
  EXPECT_DOUBLE_EQ((att - a).max_abs(), 0.0);
}

TEST(Matrix, MinorMatrix) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix m = a.minor_matrix(1, 1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(Matrix, Norms) {
  const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.inf_norm(), 7.0);
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_THROW((void)dot(a, Vector{1.0}), ContractViolation);
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  const LuDecomposition lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_DOUBLE_EQ(determinant(Matrix{{3.0}}), 3.0);
  EXPECT_DOUBLE_EQ(determinant(Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0);
  // Permutation matrix: determinant -1 exercises the pivot sign.
  EXPECT_DOUBLE_EQ(determinant(Matrix{{0.0, 1.0}, {1.0, 0.0}}), -1.0);
}

TEST(Lu, SingularDetection) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_FALSE(solve(a, Vector{1.0, 1.0}).has_value());
  EXPECT_FALSE(inverse(a).has_value());
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = solve(a, Vector{2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, SolveResidualIsSmall) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const auto n = static_cast<std::size_t>(3 + GetParam() % 12);
  const Matrix a = random_matrix(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.uniform() * 10.0 - 5.0;
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  const Vector ax = a.multiply(*x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST_P(LuPropertyTest, InverseRoundTrip) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto n = static_cast<std::size_t>(2 + GetParam() % 10);
  const Matrix a = random_matrix(n, rng);
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix product = a * (*inv);
  EXPECT_LT((product - Matrix::identity(n)).max_abs(), 1e-9);
}

TEST_P(LuPropertyTest, DeterminantOfProductIsProductOfDeterminants) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const auto n = static_cast<std::size_t>(2 + GetParam() % 6);
  const Matrix a = random_matrix(n, rng);
  const Matrix b = random_matrix(n, rng);
  const double det_ab = determinant(a * b);
  const double det_a_det_b = determinant(a) * determinant(b);
  EXPECT_NEAR(det_ab, det_a_det_b,
              1e-9 * std::max(std::abs(det_ab), std::abs(det_a_det_b)));
}

TEST_P(LuPropertyTest, SolveTransposedMatchesExplicitTranspose) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const auto n = static_cast<std::size_t>(2 + GetParam() % 8);
  const Matrix a = random_matrix(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.uniform();
  const LuDecomposition lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector via_method = lu.solve_transposed(b);
  const auto via_transpose = solve(a.transpose(), b);
  ASSERT_TRUE(via_transpose.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(via_method[i], (*via_transpose)[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, LuPropertyTest,
                         ::testing::Range(0, 20));

TEST(Lu, RcondReasonableForWellConditioned) {
  const Matrix a = Matrix::identity(5);
  const LuDecomposition lu(a);
  EXPECT_NEAR(lu.rcond_estimate(), 1.0, 1e-12);
}

TEST(Lu, RcondExactForDiagonalMatrices) {
  // For a diagonal matrix the Hager iteration converges to the true
  // 1-norm condition number: rcond = min|d| / max|d|.
  Matrix a = Matrix::identity(4);
  a(0, 0) = 1.0;
  a(1, 1) = -10.0;
  a(2, 2) = 100.0;
  a(3, 3) = 4000.0;
  const LuDecomposition lu(a);
  EXPECT_NEAR(lu.rcond_estimate(), 1.0 / 4000.0, 1e-15);
}

TEST_P(LuPropertyTest, RcondEstimateBracketsExactValue) {
  // The Hager estimator produces a lower bound on ||A^-1||_1, so the
  // returned rcond is an UPPER bound on the exact 1-norm rcond — and in
  // practice lands within a small factor of it.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const auto n = static_cast<std::size_t>(2 + GetParam() % 10);
  const Matrix a = random_matrix(n, rng);
  const LuDecomposition lu(a);
  ASSERT_FALSE(lu.singular());
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  const double exact = 1.0 / (a.one_norm() * inv->one_norm());
  const double estimate = lu.rcond_estimate();
  EXPECT_GE(estimate, exact * (1.0 - 1e-12));
  EXPECT_LE(estimate, exact * 20.0);
}

TEST(Lu, MatrixSolveMultipleRhs) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const Matrix b{{2.0, 4.0}, {8.0, 12.0}};
  const LuDecomposition lu(a);
  const Matrix x = lu.solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

}  // namespace
}  // namespace nsrel::linalg
