// Tests for the flight recorder and metrics documents: journal ring
// semantics (ordering, overflow accounting, the disabled no-op,
// sequence scopes), MetricsSnapshot's exact delta/merge algebra under
// concurrent writers (TSan-covered), the nsrel-events-v1 /
// nsrel-metrics-v1 serialization loops with typed strict-parse
// failures, the `nsrel events` / `nsrel report` CLI surface — and the
// acceptance invariants: a faulted repair run's journal timeline counts
// equal the RepairReport exactly, the journal is byte-identical at any
// --jobs, and stdout is byte-identical with the recorder on or off.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "brick/object_store.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "obs/snapshot.hpp"
#include "repair/fault_schedule.hpp"
#include "repair/repair.hpp"
#include "report/events_doc.hpp"
#include "report/metrics_doc.hpp"
#include "report/summary.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace nsrel {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::size_t count_events(const report::EventsDoc& doc,
                         const std::string& name) {
  std::size_t count = 0;
  for (const report::EventRecord& event : doc.events) {
    if (event.name == name) ++count;
  }
  return count;
}

/// Arms the journal for the test body and leaves it disabled and empty
/// afterwards (the journal is process-global, like the registry).
struct JournalScope {
  JournalScope() { obs::Journal::instance().begin(); }
  ~JournalScope() {
    obs::Journal::instance().disable();
    obs::Journal::instance().clear();
  }
};

struct RegistryScope {
  RegistryScope() {
    obs::Registry::instance().reset();
    obs::Registry::instance().set_enabled(true);
  }
  ~RegistryScope() {
    obs::Registry::instance().set_enabled(false);
    obs::Registry::instance().reset();
  }
};

// --- Journal ring semantics -------------------------------------------

TEST(Journal, DisabledRecordingIsANoOp) {
  obs::Journal::instance().disable();
  obs::Journal::instance().clear();
  ASSERT_FALSE(obs::Journal::enabled());
  obs::Journal::instance().record(obs::seq_event(obs::event::kCacheHit));
  obs::Journal::instance().drain();
  EXPECT_TRUE(obs::Journal::instance().events().empty());
  EXPECT_EQ(obs::Journal::instance().dropped(), 0u);
}

TEST(Journal, EventsComeBackStableSortedBySequenceScope) {
  const JournalScope scope;
  auto& journal = obs::Journal::instance();
  {
    const obs::ScopeGuard s2(2);
    journal.record(obs::seq_event(obs::event::kCellClaim).arg("cell", std::uint64_t{1}));
    journal.record(obs::seq_event(obs::event::kCacheMiss));
  }
  {
    const obs::ScopeGuard s1(1);
    journal.record(obs::seq_event(obs::event::kCellClaim).arg("cell", std::uint64_t{0}));
    journal.record(obs::seq_event(obs::event::kCacheHit));
  }
  journal.drain();
  const std::vector<obs::Event> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  // Sorted by scope; single-thread emission order kept within a scope.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_STREQ(events[0].name, obs::event::kCellClaim);
  EXPECT_STREQ(events[1].name, obs::event::kCacheHit);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_STREQ(events[2].name, obs::event::kCellClaim);
  EXPECT_STREQ(events[3].name, obs::event::kCacheMiss);
}

TEST(Journal, FullRingOverwritesOldestAndCountsDropped) {
  const JournalScope scope;
  auto& journal = obs::Journal::instance();
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < obs::Journal::kRingCapacity + extra; ++i) {
    journal.record(obs::seq_event(obs::event::kCacheHit).arg("n", i));
  }
  journal.drain();
  const std::vector<obs::Event> events = journal.events();
  EXPECT_EQ(events.size(), obs::Journal::kRingCapacity);
  EXPECT_EQ(journal.dropped(), extra);
  // The survivors are the newest events: the oldest `extra` are gone.
  ASSERT_EQ(events.front().arg_count, 1u);
  EXPECT_EQ(events.front().args[0].uint_value, extra);
}

TEST(Journal, BeginResetsEventsAndDroppedCount) {
  const JournalScope scope;
  auto& journal = obs::Journal::instance();
  for (std::size_t i = 0; i < obs::Journal::kRingCapacity + 5; ++i) {
    journal.record(obs::seq_event(obs::event::kCacheHit));
  }
  journal.drain();
  ASSERT_GT(journal.dropped(), 0u);
  journal.begin();
  EXPECT_TRUE(journal.events().empty());
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(Journal, ScopeGuardNestsAndRestores) {
  EXPECT_EQ(obs::current_scope(), 0u);
  {
    const obs::ScopeGuard outer(5);
    EXPECT_EQ(obs::current_scope(), 5u);
    {
      const obs::ScopeGuard inner(9);
      EXPECT_EQ(obs::current_scope(), 9u);
    }
    EXPECT_EQ(obs::current_scope(), 5u);
  }
  EXPECT_EQ(obs::current_scope(), 0u);
}

TEST(Journal, EventArgsPastTheLimitAreDroppedSilently) {
  obs::Event event = obs::seq_event(obs::event::kCellClaim);
  event.arg("a", std::uint64_t{1})
      .arg("b", std::uint64_t{2})
      .arg("c", std::uint64_t{3})
      .arg("d", std::uint64_t{4})
      .arg("e", std::uint64_t{5});
  EXPECT_EQ(event.arg_count, obs::kMaxEventArgs);
}

// --- MetricsSnapshot algebra ------------------------------------------

TEST(MetricsSnapshot, MergeOfDeltaReproducesAfterExactly) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  const obs::Counter counter = registry.counter("test.fr_counter");
  const obs::Histogram histogram = registry.histogram("test.fr_ns");
  registry.add(counter, 7);
  registry.record(histogram, 3);
  registry.record(histogram, 4100);
  const obs::MetricsSnapshot before = obs::MetricsSnapshot::capture();
  registry.add(counter, 11);
  registry.record(histogram, 1);
  registry.record(histogram, 1u << 20);
  const obs::MetricsSnapshot after = obs::MetricsSnapshot::capture();

  const obs::MetricsSnapshot delta =
      obs::MetricsSnapshot::delta(before, after);
  EXPECT_EQ(obs::MetricsSnapshot::merge(before, delta), after);
  EXPECT_NE(before, after);
}

TEST(MetricsSnapshot, DeltaAndMergeAreExactUnderConcurrentWriters) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  const obs::Counter counter = registry.counter("test.fr_conc");
  const obs::Histogram histogram = registry.histogram("test.fr_conc_ns");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  const auto burst = [&] {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&registry, counter, histogram] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          registry.add(counter);
          registry.record(histogram, i + 1);
        }
      });
    }
    for (auto& w : writers) w.join();
  };

  burst();
  const obs::MetricsSnapshot before = obs::MetricsSnapshot::capture();
  burst();
  const obs::MetricsSnapshot after = obs::MetricsSnapshot::capture();

  const obs::MetricsSnapshot delta =
      obs::MetricsSnapshot::delta(before, after);
  EXPECT_EQ(obs::MetricsSnapshot::merge(before, delta), after);
  for (const auto& row : delta.counters) {
    if (row.name == "test.fr_conc") {
      EXPECT_EQ(row.value, kThreads * kPerThread);
    }
  }
  for (const auto& row : delta.histograms) {
    if (row.name == "test.fr_conc_ns") {
      EXPECT_EQ(row.count, kThreads * kPerThread);
      EXPECT_EQ(row.sum, kThreads * kPerThread * (kPerThread + 1) / 2);
    }
  }
}

// --- Serialization loops ----------------------------------------------

TEST(EventsDoc, NdjsonRoundTripsEveryFieldAndArgKind) {
  const JournalScope scope;
  auto& journal = obs::Journal::instance();
  {
    const obs::ScopeGuard s(3);
    journal.record(obs::seq_event(obs::event::kSolveStart)
                       .arg("backend", "dense")
                       .arg("states", std::uint64_t{12}));
  }
  journal.record(obs::sim_event(obs::event::kRepairBarrier, 7, 0.5)
                     .arg("batch", std::uint64_t{1})
                     .arg("committed", std::uint64_t{42}));
  journal.record(
      obs::sim_event(obs::event::kRepairReplan, 8, 0.625).arg("invalidated", std::uint64_t{3}));
  journal.drain();

  std::ostringstream ndjson;
  report::write_events_ndjson(journal.events(), journal.dropped(), ndjson);

  const Expected<report::EventsDoc> parsed =
      report::read_events_ndjson(ndjson.str());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message();
  const report::EventsDoc& doc = parsed.value();
  EXPECT_EQ(doc.dropped, 0u);
  ASSERT_EQ(doc.events.size(), 3u);

  EXPECT_EQ(doc.events[0].name, "solve.start");
  EXPECT_FALSE(doc.events[0].sim_domain);
  EXPECT_EQ(doc.events[0].seq, 3u);
  ASSERT_EQ(doc.events[0].args.size(), 2u);
  EXPECT_EQ(doc.events[0].args[0].key, "backend");
  EXPECT_EQ(doc.events[0].args[0].literal_value, "dense");
  EXPECT_EQ(doc.events[0].args[1].key, "states");
  EXPECT_EQ(doc.events[0].args[1].uint_value, 12u);

  EXPECT_EQ(doc.events[1].name, "repair.barrier");
  EXPECT_TRUE(doc.events[1].sim_domain);
  EXPECT_EQ(doc.events[1].seq, 7u);
  EXPECT_DOUBLE_EQ(doc.events[1].sim_seconds, 0.5);

  EXPECT_DOUBLE_EQ(doc.events[2].sim_seconds, 0.625);

  // Writing the same journal again produces the same bytes.
  std::ostringstream again;
  report::write_events_ndjson(journal.events(), journal.dropped(), again);
  EXPECT_EQ(ndjson.str(), again.str());
}

TEST(EventsDoc, MalformedJournalsAreTypedErrors) {
  for (const char* bad : {
           "",                                          // no header
           "{\"schema\":\"nope\",\"dropped\":0}\n",     // wrong schema
           "{\"dropped\":0}\n",                         // missing schema
           "{\"schema\":\"nsrel-events-v1\"}\n",        // missing dropped
           "{\"schema\":\"nsrel-events-v1\",\"dropped\":0}\n"
           "{\"domain\":\"seq\",\"seq\":1}\n",          // event w/o name
           "{\"schema\":\"nsrel-events-v1\",\"dropped\":0}\n"
           "{\"event\":\"x\",\"domain\":\"lunar\",\"seq\":1}\n",
           "{\"schema\":\"nsrel-events-v1\",\"dropped\":0}\n"
           "{\"event\":\"x\",\"domain\":\"seq\"",       // truncated line
       }) {
    const Expected<report::EventsDoc> parsed =
        report::read_events_ndjson(bad);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.error().code, ErrorCode::kMalformedDocument) << bad;
  }
}

TEST(MetricsDoc, JsonRoundTripsSnapshotFieldForField) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  registry.add(registry.counter("test.fr_doc"), 123456789);
  const obs::Histogram histogram = registry.histogram("test.fr_doc_ns");
  for (std::uint64_t v = 1; v < 1u << 16; v <<= 1) {
    registry.record(histogram, v);
  }
  const obs::MetricsSnapshot snapshot = obs::MetricsSnapshot::capture();

  std::ostringstream json;
  report::write_metrics_json(snapshot, json);
  const Expected<obs::MetricsSnapshot> parsed =
      report::read_metrics_json(json.str());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message();
  EXPECT_EQ(parsed.value(), snapshot);
}

TEST(MetricsDoc, MalformedDocumentsAreTypedErrors) {
  for (const char* bad : {
           "",
           "{}",
           "{\"schema\":\"nope\"}",
           "{\"schema\":\"nsrel-metrics-v1\"",  // truncated
       }) {
    const Expected<obs::MetricsSnapshot> parsed =
        report::read_metrics_json(bad);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.error().code, ErrorCode::kMalformedDocument) << bad;
  }
}

TEST(MetricsDoc, ReaderRejectsTamperedPercentileSummary) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  const obs::Histogram histogram = registry.histogram("test.fr_tamper");
  registry.record(histogram, 100);
  registry.record(histogram, 200);
  std::ostringstream json;
  report::write_metrics_json(obs::MetricsSnapshot::capture(), json);
  std::string text = json.str();
  // Corrupt the derived p99 so it disagrees with the buckets.
  const std::size_t at = text.find("\"p99\":");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "\"p99\":9");
  const Expected<obs::MetricsSnapshot> parsed =
      report::read_metrics_json(text);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code, ErrorCode::kMalformedDocument);
}

TEST(Summary, ReportTableMergesMetricsAndEventsDocuments) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  registry.add(registry.counter("test.fr_sum"), 4);
  std::ostringstream metrics_json;
  report::write_metrics_json(obs::MetricsSnapshot::capture(), metrics_json);

  const JournalScope journal_scope;
  auto& journal = obs::Journal::instance();
  journal.record(obs::seq_event(obs::event::kCacheHit));
  journal.record(obs::seq_event(obs::event::kCacheHit));
  journal.drain();
  std::ostringstream events_ndjson;
  report::write_events_ndjson(journal.events(), journal.dropped(),
                              events_ndjson);

  std::vector<report::RunDoc> runs;
  const Expected<report::RunDoc> metrics_doc =
      report::read_run_document("m.json", metrics_json.str());
  ASSERT_TRUE(metrics_doc.has_value());
  runs.push_back(metrics_doc.value());
  const Expected<report::RunDoc> events_doc =
      report::read_run_document("e.ndjson", events_ndjson.str());
  ASSERT_TRUE(events_doc.has_value());
  runs.push_back(events_doc.value());

  const std::string table = report::report_table(runs).to_string();
  EXPECT_NE(table.find("test.fr_sum"), std::string::npos);
  EXPECT_NE(table.find("events.cache.hit"), std::string::npos);
  EXPECT_NE(table.find("m.json"), std::string::npos);
  EXPECT_NE(table.find("e.ndjson"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);

  const Expected<report::RunDoc> garbage =
      report::read_run_document("bad", "not a document");
  ASSERT_FALSE(garbage.has_value());
  EXPECT_EQ(garbage.error().code, ErrorCode::kMalformedDocument);
}

// --- Faulted repair: journal vs report --------------------------------

repair::RepairOptions soak_options(int jobs,
                                   std::vector<brick::ObjectId> objects,
                                   std::vector<std::size_t> sizes,
                                   std::uint64_t* degraded_decodes,
                                   std::uint64_t* failed_reads) {
  repair::RepairOptions options;
  options.jobs = jobs;
  options.timing.bytes_per_second = 4.0 * 1024.0 * 1024.0;
  options.on_barrier = [objects = std::move(objects),
                        sizes = std::move(sizes), degraded_decodes,
                        failed_reads](brick::ObjectStore& store, double) {
    workload::WorkloadParams wl;
    wl.operations = 16;
    wl.read_bytes = 256;
    wl.seed = 0xBEEF;
    const workload::WorkloadResult result =
        workload::run_read_workload(store, objects, sizes, wl);
    if (degraded_decodes != nullptr) {
      *degraded_decodes += result.io.decode_operations;
    }
    if (failed_reads != nullptr) *failed_reads += result.failed_reads;
  };
  return options;
}

struct FaultedRun {
  repair::RepairReport report;
  std::string ndjson;
  std::uint64_t degraded_decodes = 0;
  std::uint64_t failed_reads = 0;
};

/// Builds a deterministic degraded store, arms the journal, runs a
/// faulted repair with foreground reads at every barrier, and returns
/// the report plus the exported journal bytes.
FaultedRun faulted_repair_run(int jobs) {
  brick::StoreParams p;
  p.node_count = 12;
  p.drives_per_node = 3;
  p.drive_capacity = kilobytes(512.0);
  p.redundancy_set_size = 6;
  p.fault_tolerance = 2;
  p.chunk_size = Bytes(256.0);

  brick::ObjectStore store(p);
  Xoshiro256 rng(0xF11E);
  std::vector<brick::ObjectId> objects;
  std::vector<std::size_t> sizes;
  const std::size_t object_size = 4 * 256;
  for (int i = 0; i < 600; ++i) {
    std::vector<std::uint8_t> bytes(object_size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    objects.push_back(store.write(bytes));
    sizes.push_back(object_size);
  }
  store.fail_node(2);

  const Expected<repair::FaultSchedule> schedule =
      repair::parse_fault_schedule(
          "after:100 node:7; after:250 drive:5.1; before:400 node:7");
  EXPECT_TRUE(schedule.has_value());

  FaultedRun run;
  const repair::RepairOptions options =
      soak_options(jobs, objects, sizes, &run.degraded_decodes,
                   &run.failed_reads);

  obs::Journal::instance().begin();
  run.report = repair::run_repair(store, schedule.value(), options);
  obs::Journal::instance().drain();
  obs::Journal::instance().disable();
  std::ostringstream ndjson;
  report::write_events_ndjson(obs::Journal::instance().events(),
                              obs::Journal::instance().dropped(), ndjson);
  obs::Journal::instance().clear();
  run.ndjson = ndjson.str();
  return run;
}

TEST(RepairJournal, TimelineCountsEqualTheRepairReportExactly) {
  const FaultedRun run = faulted_repair_run(/*jobs=*/4);
  const Expected<report::EventsDoc> parsed =
      report::read_events_ndjson(run.ndjson);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message();
  const report::EventsDoc& doc = parsed.value();
  ASSERT_FALSE(doc.events.empty());

  // Faults: schedule events that changed state carry applied=1; the
  // deliberate node-7 repeat fires with applied=0.
  std::uint64_t faults_fired = 0;
  std::uint64_t faults_applied = 0;
  std::uint64_t replans = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  for (const report::EventRecord& event : doc.events) {
    if (event.name == "repair.fault") {
      ++faults_fired;
      for (const auto& arg : event.args) {
        if (arg.key == "applied") faults_applied += arg.uint_value;
      }
    } else if (event.name == "repair.replan") {
      for (const auto& arg : event.args) {
        if (arg.key == "invalidated") replans += arg.uint_value;
      }
    } else if (event.name == "repair.retry") {
      ++retries;
    } else if (event.name == "brick.degraded_read") {
      ++degraded;
    } else if (event.name == "workload.read_failed") {
      ++failed;
    }
  }

  EXPECT_EQ(faults_fired, 3u);  // every schedule event fired
  EXPECT_EQ(faults_applied, run.report.injected_faults);
  EXPECT_EQ(replans, run.report.replans);
  EXPECT_EQ(retries, run.report.retries);
  EXPECT_EQ(degraded, run.degraded_decodes);
  EXPECT_EQ(failed, run.failed_reads);
  EXPECT_GT(faults_applied, 0u);
  EXPECT_GT(replans, 0u);
  EXPECT_GT(degraded, 0u);  // foreground service ran while degraded

  // One barrier event per batch, strictly increasing batch index.
  std::uint64_t last_batch = 0;
  for (const report::EventRecord& event : doc.events) {
    if (event.name != "repair.barrier") continue;
    for (const auto& arg : event.args) {
      if (arg.key == "batch") {
        EXPECT_EQ(arg.uint_value, last_batch + 1);
        last_batch = arg.uint_value;
      }
    }
  }
  EXPECT_GT(last_batch, 0u);

  // The batches rollup renders one row per barrier (plus a possible
  // trailing row for events after the last barrier).
  const report::Table batches = report::events_batches_table(doc);
  EXPECT_GE(batches.row_count(), last_batch);
}

TEST(RepairJournal, JournalIsByteIdenticalAtAnyJobsCount) {
  const FaultedRun serial = faulted_repair_run(/*jobs=*/1);
  const FaultedRun parallel = faulted_repair_run(/*jobs=*/4);
  ASSERT_FALSE(serial.ndjson.empty());
  EXPECT_EQ(serial.ndjson, parallel.ndjson);
  EXPECT_EQ(render_repair_report(serial.report),
            render_repair_report(parallel.report));
}

// --- CLI surface ------------------------------------------------------

struct CliResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::initializer_list<const char*> tokens) {
  const cli::Args args(
      std::vector<std::string>(tokens.begin(), tokens.end()));
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::dispatch(args, out, err);
  return {rc, out.str(), err.str()};
}

TEST(EventsCli, SweepStdoutByteIdenticalWithRecorderOnAtAnyJobs) {
  const CliResult plain = run_cli({"sweep", "--steps", "4"});
  ASSERT_EQ(plain.exit_code, 0);

  const std::string events1 = temp_path("fr_sweep_j1.ndjson");
  const std::string events8 = temp_path("fr_sweep_j8.ndjson");
  const std::string metrics1 = temp_path("fr_sweep_j1.metrics.json");
  const CliResult run1 =
      run_cli({"sweep", "--steps", "4", "--jobs", "1", "--events",
               events1.c_str(), "--metrics-out", metrics1.c_str()});
  const CliResult run8 = run_cli({"sweep", "--steps", "4", "--jobs", "8",
                                  "--events", events8.c_str()});
  ASSERT_EQ(run1.exit_code, 0) << run1.err;
  ASSERT_EQ(run8.exit_code, 0) << run8.err;
  EXPECT_EQ(plain.out, run1.out);
  EXPECT_EQ(plain.out, run8.out);

  // The journal itself is byte-identical at any --jobs.
  const std::string journal1 = slurp(events1);
  ASSERT_FALSE(journal1.empty());
  EXPECT_EQ(journal1, slurp(events8));

  // It parses strictly and records the sweep's cells and solves.
  const Expected<report::EventsDoc> parsed =
      report::read_events_ndjson(journal1);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message();
  EXPECT_GE(count_events(parsed.value(), "cell.claim"), 4u);
  EXPECT_GE(count_events(parsed.value(), "solve.start"), 1u);
  EXPECT_EQ(count_events(parsed.value(), "solve.start"),
            count_events(parsed.value(), "solve.end"));

  // The metrics document parses and round-trips exactly.
  const Expected<obs::MetricsSnapshot> metrics =
      report::read_metrics_json(slurp(metrics1));
  ASSERT_TRUE(metrics.has_value()) << metrics.error().message();
  std::ostringstream rewritten;
  report::write_metrics_json(metrics.value(), rewritten);
  EXPECT_EQ(rewritten.str(), slurp(metrics1));
}

TEST(EventsCli, EventsCommandRendersTimelineBatchesCsvAndJson) {
  const std::string path = temp_path("fr_cli_events.ndjson");
  const CliResult sweep = run_cli(
      {"sweep", "--steps", "3", "--events", path.c_str()});
  ASSERT_EQ(sweep.exit_code, 0) << sweep.err;

  const CliResult timeline = run_cli({"events", path.c_str()});
  EXPECT_EQ(timeline.exit_code, 0) << timeline.err;
  EXPECT_NE(timeline.out.find("event"), std::string::npos);
  EXPECT_NE(timeline.out.find("cell.claim"), std::string::npos);

  const CliResult batches =
      run_cli({"events", path.c_str(), "--view", "batches"});
  EXPECT_EQ(batches.exit_code, 0) << batches.err;

  const CliResult csv =
      run_cli({"events", path.c_str(), "--format", "csv"});
  EXPECT_EQ(csv.exit_code, 0);
  EXPECT_NE(csv.out.find("cell.claim"), std::string::npos);

  const CliResult json =
      run_cli({"events", path.c_str(), "--format", "json"});
  EXPECT_EQ(json.exit_code, 0);
  EXPECT_NE(json.out.find("\"schema\": \"nsrel-events-v1\""),
            std::string::npos);
}

TEST(EventsCli, EventsCommandFailsTypedOnMissingOrMalformedInput) {
  const CliResult missing = run_cli({"events", "/no/such/journal.ndjson"});
  EXPECT_NE(missing.exit_code, 0);
  EXPECT_NE(missing.err.find("cannot open"), std::string::npos);

  const std::string path = temp_path("fr_cli_bad.ndjson");
  {
    std::ofstream out(path);
    out << "{\"schema\":\"wrong\"}\n";
  }
  const CliResult malformed = run_cli({"events", path.c_str()});
  EXPECT_NE(malformed.exit_code, 0);
  EXPECT_NE(malformed.err.find("error"), std::string::npos);
}

TEST(EventsCli, ReportCommandAggregatesAcrossDocuments) {
  const std::string events = temp_path("fr_report_events.ndjson");
  const std::string metrics = temp_path("fr_report_metrics.json");
  const CliResult sweep =
      run_cli({"sweep", "--steps", "3", "--events", events.c_str(),
               "--metrics-out", metrics.c_str()});
  ASSERT_EQ(sweep.exit_code, 0) << sweep.err;

  const CliResult table =
      run_cli({"report", metrics.c_str(), events.c_str()});
  EXPECT_EQ(table.exit_code, 0) << table.err;
  EXPECT_NE(table.out.find("total"), std::string::npos);
  EXPECT_NE(table.out.find("events.cell.claim"), std::string::npos);
  EXPECT_NE(table.out.find("solve_cache"), std::string::npos);

  const CliResult json = run_cli(
      {"report", metrics.c_str(), events.c_str(), "--format", "json"});
  EXPECT_EQ(json.exit_code, 0) << json.err;
  EXPECT_NE(json.out.find("\"schema\": \"nsrel-report-v1\""),
            std::string::npos);

  const CliResult missing = run_cli({"report", "/no/such/doc.json"});
  EXPECT_NE(missing.exit_code, 0);
}

TEST(EventsCli, ScenarioOutputKeyWritesJournal) {
  const std::string scenario_path = temp_path("fr_scenario.toml");
  const std::string events_path = temp_path("fr_scenario_events.ndjson");
  {
    std::ofstream out(scenario_path);
    out << "[configurations]\n"
        << "list = none-ft2\n"
        << "[sweep]\n"
        << "param = drive-mttf\n"
        << "from = 100e3\n"
        << "to = 200e3\n"
        << "steps = 2\n"
        << "[output]\n"
        << "events = " << events_path << "\n";
  }
  const CliResult run =
      run_cli({"scenario", "--file", scenario_path.c_str()});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  const Expected<report::EventsDoc> parsed =
      report::read_events_ndjson(slurp(events_path));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message();
  EXPECT_GE(count_events(parsed.value(), "cell.claim"), 2u);
}

}  // namespace
}  // namespace nsrel
