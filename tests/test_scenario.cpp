// Tests for the scenario module: INI parsing (syntax + errors), scenario
// schema validation, and end-to-end runs to table and CSV.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/ini.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace nsrel::scenario {
namespace {

TEST(Ini, ParsesSectionsKeysCommentsAndBlanks) {
  const IniDocument doc = IniDocument::parse(R"(
# leading comment
top = 1

[system]
n = 64          ; trailing comment
drive-mttf = 3e5

[empty]
)");
  EXPECT_TRUE(doc.has("", "top"));
  EXPECT_EQ(doc.get("system", "n", ""), "64");
  EXPECT_DOUBLE_EQ(doc.get_double("system", "drive-mttf", 0.0), 3e5);
  EXPECT_TRUE(doc.has_section("empty"));
  EXPECT_FALSE(doc.has_section("missing"));
  EXPECT_EQ(doc.get("missing", "x", "fallback"), "fallback");
}

TEST(Ini, TrimAndSplit) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n"), "");
  const auto pieces = split_list(" a, b ,, c ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Ini, ErrorsCarryLineNumbers) {
  try {
    (void)IniDocument::parse("ok = 1\nbroken line\n");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Ini, RejectsMalformedInput) {
  EXPECT_THROW((void)IniDocument::parse("[unterminated\n"), ContractViolation);
  EXPECT_THROW((void)IniDocument::parse("[]\n"), ContractViolation);
  EXPECT_THROW((void)IniDocument::parse("= value\n"), ContractViolation);
  EXPECT_THROW((void)IniDocument::parse("a = 1\na = 2\n"), ContractViolation);
  const IniDocument doc = IniDocument::parse("[s]\nx = notanumber\n");
  EXPECT_THROW((void)doc.get_double("s", "x", 0.0), ContractViolation);
}

TEST(ConfigurationToken, ParsesAllSchemes) {
  EXPECT_EQ(parse_configuration_token("none-ft3").internal,
            core::InternalScheme::kNone);
  EXPECT_EQ(parse_configuration_token("raid5-ft2").internal,
            core::InternalScheme::kRaid5);
  const auto r6 = parse_configuration_token("raid6-ft1");
  EXPECT_EQ(r6.internal, core::InternalScheme::kRaid6);
  EXPECT_EQ(r6.node_fault_tolerance, 1);
}

TEST(ConfigurationToken, RejectsGarbage) {
  EXPECT_THROW((void)parse_configuration_token("raid5"), ContractViolation);
  EXPECT_THROW((void)parse_configuration_token("raid7-ft2"),
               ContractViolation);
  EXPECT_THROW((void)parse_configuration_token("raid5-ftx"),
               ContractViolation);
  EXPECT_THROW((void)parse_configuration_token("raid5-ft0"),
               ContractViolation);
}

TEST(Scenario, DefaultsWhenSectionsAbsent) {
  const Scenario scenario = parse_scenario("");
  EXPECT_EQ(scenario.configurations.size(), 3u);  // the sensitivity trio
  EXPECT_TRUE(scenario.sweeps.empty());
  EXPECT_EQ(scenario.format, report::OutputFormat::kTable);
  EXPECT_EQ(scenario.jobs, 1);
  EXPECT_DOUBLE_EQ(scenario.target.events_per_pb_year, 2e-3);
}

TEST(Scenario, OutputFormatAndJobsParse) {
  const Scenario json = parse_scenario("[output]\nformat = json\njobs = 4\n");
  EXPECT_EQ(json.format, report::OutputFormat::kJson);
  EXPECT_EQ(json.jobs, 4);
  const Scenario all_cores = parse_scenario("[output]\njobs = 0\n");
  EXPECT_EQ(all_cores.jobs, 0);
  EXPECT_THROW((void)parse_scenario("[output]\njobs = -1\n"),
               ContractViolation);
}

TEST(Scenario, SystemOverridesApply) {
  const Scenario scenario = parse_scenario(R"(
[system]
n = 32
link-gbps = 5
)");
  EXPECT_EQ(scenario.system.node_set_size, 32);
  EXPECT_DOUBLE_EQ(scenario.system.link.raw_speed.value(), 5e9);
  EXPECT_EQ(scenario.system.drives_per_node, 12);  // baseline retained
}

TEST(Scenario, RejectsUnknownKeysAndSections) {
  EXPECT_THROW((void)parse_scenario("[system]\nwombats = 3\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_scenario("[mystery]\nx = 1\n"), ContractViolation);
  EXPECT_THROW((void)parse_scenario("[sweep]\nparam = wombats\nfrom = 1\nto "
                                    "= 2\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_scenario("[sweep]\nparam = n\nfrom = 5\nto = 2\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_scenario("[output]\nformat = xml\n"),
               ContractViolation);
}

TEST(Scenario, SingleEvaluationRun) {
  std::ostringstream out;
  run_scenario_text(R"(
[configurations]
list = raid5-ft2
)",
                    out);
  const std::string text = out.str();
  EXPECT_NE(text.find("FT2, Internal RAID 5"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // meets target at baseline
}

TEST(Scenario, SweepRunTableShape) {
  std::ostringstream out;
  run_scenario_text(R"(
[configurations]
list = none-ft3
[sweep]
param = link-gbps
from = 1
to = 10
steps = 4
scale = log
)",
                    out);
  const std::string text = out.str();
  // Header + underline + 4 rows + footnote.
  int lines = 0;
  for (const char ch : text) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 7);
}

TEST(Scenario, CsvOutput) {
  std::ostringstream out;
  run_scenario_text(R"(
[configurations]
list = none-ft2, raid5-ft2
[sweep]
param = drive-mttf
from = 1e5
to = 7.5e5
steps = 3
scale = linear
[output]
format = csv
)",
                    out);
  const std::string text = out.str();
  EXPECT_NE(text.find("drive-mttf,"), std::string::npos);
  // CSV: no asterisks, 4 lines (header + 3 rows).
  EXPECT_EQ(text.find('*'), std::string::npos);
}

TEST(Scenario, JsonOutputAndJobsInvariance) {
  const char* kBody = R"(
[configurations]
list = none-ft2, raid5-ft2
[sweep]
param = drive-mttf
from = 1e5
to = 7.5e5
steps = 4
scale = log
[output]
format = json
)";
  std::ostringstream serial;
  run_scenario_text(std::string(kBody) + "jobs = 1\n", serial);
  EXPECT_NE(serial.str().find("\"schema\": \"nsrel-resultset-v3\""),
            std::string::npos);
  EXPECT_NE(serial.str().find("\"name\": \"drive-mttf\""), std::string::npos);

  // Same scenario at jobs = 4: bytes must match exactly.
  std::ostringstream parallel;
  run_scenario_text(std::string(kBody) + "jobs = 4\n", parallel);
  EXPECT_EQ(serial.str(), parallel.str());
}

TEST(Scenario, LinearAndLogSpacingDiffer) {
  const Scenario log_s = parse_scenario(
      "[sweep]\nparam = n\nfrom = 16\nto = 256\nsteps = 3\nscale = log\n");
  const Scenario lin_s = parse_scenario(
      "[sweep]\nparam = n\nfrom = 16\nto = 256\nsteps = 3\nscale = linear\n");
  ASSERT_EQ(log_s.sweeps.size(), 1u);
  EXPECT_TRUE(log_s.sweeps[0].log_scale);
  EXPECT_FALSE(lin_s.sweeps[0].log_scale);
}

TEST(Scenario, RepositoryScenarioFilesParse) {
  // Keep the shipped example files valid.
  for (const char* text : {
           // mirror of scenarios/baseline.scenario structure
           "[configurations]\nlist = none-ft1, raid5-ft2\n[output]\nformat "
           "= table\n",
       }) {
    EXPECT_NO_THROW((void)parse_scenario(text));
  }
}

// ---------------------------------------------------------------------
// Cartesian sweeps: [sweep.2] and beyond.

TEST(Cartesian, TwoAxisScenarioBuildsTheProductGrid) {
  const Scenario scenario = parse_scenario(R"(
[sweep]
param = drive-mttf
from = 1e5
to = 5e5
steps = 3
[sweep.2]
param = link-gbps
from = 1
to = 10
steps = 2
)");
  ASSERT_EQ(scenario.sweeps.size(), 2u);
  EXPECT_EQ(scenario.sweeps[0].parameter, "drive-mttf");
  EXPECT_EQ(scenario.sweeps[1].parameter, "link-gbps");
  std::ostringstream out;
  const RunOutcome outcome = run_scenario(scenario, out);
  EXPECT_EQ(outcome.ok_count, 3u * 2u * 3u);  // points x configurations
  EXPECT_NE(out.str().find("drive-mttf x link-gbps"), std::string::npos);
}

TEST(Cartesian, RejectsDuplicateAxisParameterAndGappedSections) {
  EXPECT_THROW(
      (void)parse_scenario("[sweep]\nparam = n\nfrom = 16\nto = 64\nsteps = "
                           "2\n[sweep.2]\nparam = n\nfrom = 16\nto = "
                           "64\nsteps = 2\n"),
      ContractViolation);
  // [sweep.3] with no [sweep.2] is a typo, not a third axis.
  try {
    (void)parse_scenario(
        "[sweep]\nparam = n\nfrom = 16\nto = 64\nsteps = 2\n"
        "[sweep.3]\nparam = util\nfrom = 0.5\nto = 0.9\nsteps = 2\n");
    FAIL() << "gapped sweep section accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("consecutive"), std::string::npos);
  }
}

TEST(Cartesian, CommittedScenarioMatchesGoldenOutput) {
  // scenarios/mttf_x_bandwidth.scenario is the repo's 2-axis example;
  // its table output is pinned byte-for-byte. Regenerate the golden
  // with:  nsrel scenario --file scenarios/mttf_x_bandwidth.scenario
  //        > tests/golden/mttf_x_bandwidth.golden
  const std::string root = NSREL_SOURCE_DIR;
  std::ifstream scenario_file(root + "/scenarios/mttf_x_bandwidth.scenario");
  ASSERT_TRUE(scenario_file.good());
  std::ostringstream scenario_text;
  scenario_text << scenario_file.rdbuf();
  std::ifstream golden_file(root + "/tests/golden/mttf_x_bandwidth.golden");
  ASSERT_TRUE(golden_file.good());
  std::ostringstream golden;
  golden << golden_file.rdbuf();

  std::ostringstream out;
  const RunOutcome outcome = run_scenario_text(scenario_text.str(), out);
  EXPECT_TRUE(outcome.all_ok());
  EXPECT_EQ(out.str(), golden.str());
}

}  // namespace
}  // namespace nsrel::scenario
