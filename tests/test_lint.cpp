// Tests for tools/nsrel-lint: every rule must fire on its known-bad
// fixture tree (tests/lint_fixtures/<rule>/), rule-named NOLINT must
// suppress, and the committed tree must lint clean — the same gate CI
// runs, so a finding fails here before it fails there.
//
// The linter is a Python script; each case shells out and checks exit
// status + output. If no python3 is on PATH the suite skips rather than
// fails (the container gate is CI's job, not every dev box's).
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct RunResult {
  int status = -1;
  std::string output;
};

/// Runs a shell command, capturing combined stdout+stderr.
RunResult run(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int raw = ::pclose(pipe);
  result.status = (raw >= 0 && WIFEXITED(raw)) ? WEXITSTATUS(raw) : -1;
  return result;
}

bool have_python() {
  static const bool available =
      run("python3 --version").status == 0;
  return available;
}

const std::string kSource = NSREL_SOURCE_DIR;
const std::string kLint = "python3 " + kSource + "/tools/nsrel-lint";
const std::string kFixtures = kSource + "/tests/lint_fixtures";

/// Lints one fixture tree with the regex rules (no compiler needed).
RunResult lint_fixture(const std::string& name) {
  return run(kLint + " --root " + kFixtures + "/" + name + " --no-compile");
}

#define SKIP_WITHOUT_PYTHON() \
  if (!have_python()) GTEST_SKIP() << "python3 not on PATH"

TEST(NsrelLint, FiresOnNondeterministicRng) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("rng_determinism");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[rng-determinism]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("bad_rng.cpp"), std::string::npos);
}

TEST(NsrelLint, FiresOnWallClockRead) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("wall_clock");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[wall-clock]"), std::string::npos)
      << result.output;
}

TEST(NsrelLint, FiresOnUnorderedContainerInOutputPathAndOnIteration) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("ordered_output");
  EXPECT_EQ(result.status, 1) << result.output;
  // Both variants: the mere presence in an output-path file, and
  // hash-order iteration anywhere in src/.
  EXPECT_NE(result.output.find("bad_render.cpp"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("bad_iter.cpp"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("[ordered-output]"), std::string::npos);
}

TEST(NsrelLint, FiresOnProbeNameLiteralAndDuplicateRegistryEntry) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("probe_registry");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("string literal"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("duplicate probe name"), std::string::npos)
      << result.output;
}

TEST(NsrelLint, FiresOnEventNameLiteralDuplicateAndRename) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("event_registry");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("journal event name is a string literal"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("duplicate event name"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("never be reordered or renamed"),
            std::string::npos)
      << result.output;
}

TEST(NsrelLint, FiresOnReorderedErrorCodes) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("error_stability");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[error-stability]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("never be reordered"), std::string::npos);
}

TEST(NsrelLint, FiresOnCatchAllOutsideCliTopLevel) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("catch_all");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[catch-all]"), std::string::npos)
      << result.output;
}

TEST(NsrelLint, FiresOnMissingDirectInclude) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("include_direct");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[include-direct]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("<vector>"), std::string::npos);
}

TEST(NsrelLint, FiresOnNonSelfSufficientHeader) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result =
      run(kLint + " --root " + kFixtures + "/self_sufficient" +
          " --rules include-self-sufficient -j 2");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[include-self-sufficient]"),
            std::string::npos)
      << result.output;
}

TEST(NsrelLint, FiresOnUnregisteredAtomicMisorderedOpAndStaleRow) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("atomics_policy");
  EXPECT_EQ(result.status, 1) << result.output;
  // All three contract edges: an atomic with no registry row, ops whose
  // memory order conflicts with the declared role (bare default AND an
  // explicit wrong order), and a registry row whose atomic is gone —
  // the table must mirror the tree in both directions.
  EXPECT_NE(result.output.find("is not registered"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("default seq_cst"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("memory_order_acquire"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("no matching declaration"),
            std::string::npos)
      << result.output;
}

TEST(NsrelLint, FiresOnMissingNodiscardAndDiscardedTryCall) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("expected_nodiscard");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("must be [[nodiscard]]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("result is discarded"), std::string::npos)
      << result.output;
  // Exactly two discard findings: the wrapped-assignment continuation
  // line in the fixture must NOT count as a discard.
  std::size_t discards = 0;
  for (std::size_t pos = result.output.find("result is discarded");
       pos != std::string::npos;
       pos = result.output.find("result is discarded", pos + 1)) {
    ++discards;
  }
  EXPECT_EQ(discards, 2u) << result.output;
}

TEST(NsrelLint, FiresOnRawSyncPrimitivesInSrc) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("sync_wrapper");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("[sync-wrapper]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("std::lock_guard"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("std::condition_variable"),
            std::string::npos)
      << result.output;
}

TEST(NsrelLint, RuleNamedNolintSuppresses) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = lint_fixture("nolint");
  EXPECT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("clean"), std::string::npos);
}

TEST(NsrelLint, RejectsUnknownRuleNames) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result =
      run(kLint + " --rules no-such-rule --no-compile");
  EXPECT_EQ(result.status, 2) << result.output;
}

// The committed tree is the most important fixture of all: the gate
// only means something while it stays green. Regex rules here; the
// header self-sufficiency compile check gets its own test below so a
// failure names the culprit rule.
TEST(NsrelLint, CommittedTreeLintsClean) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result = run(kLint + " --no-compile");
  EXPECT_EQ(result.status, 0) << result.output;
}

TEST(NsrelLint, CommittedHeadersAreSelfSufficient) {
  SKIP_WITHOUT_PYTHON();
  const RunResult result =
      run(kLint + " --rules include-self-sufficient -j 4");
  EXPECT_EQ(result.status, 0) << result.output;
}

}  // namespace
