// Tests for the Weibull lifetime distribution and the non-Markovian
// simulator: distribution moments, the exact reduction to the Markov
// model at shape = 1, and the direction of the exponential-assumption
// error at fixed MTTF.
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include "models/no_internal_raid.hpp"
#include "sim/weibull_simulator.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace nsrel {
namespace {

TEST(Weibull, ShapeOneIsExponential) {
  const WeibullLifetime life(1.0, 500.0);
  EXPECT_NEAR(life.scale_hours(), 500.0, 1e-9);
  EXPECT_NEAR(life.mean_hours(), 500.0, 1e-9);
  // Constant hazard = 1/mean.
  EXPECT_NEAR(life.hazard(1.0), 1.0 / 500.0, 1e-12);
  EXPECT_NEAR(life.hazard(1000.0), 1.0 / 500.0, 1e-12);
}

TEST(Weibull, MeanIsPreservedAcrossShapes) {
  for (const double shape : {0.5, 0.7, 1.0, 1.5, 2.0, 3.0}) {
    const WeibullLifetime life(shape, 1234.5);
    EXPECT_NEAR(life.mean_hours(), 1234.5, 1e-9) << shape;
  }
}

TEST(Weibull, SampleMeanMatchesAnalyticMean) {
  Xoshiro256 rng(77);
  for (const double shape : {0.7, 1.0, 2.0}) {
    const WeibullLifetime life(shape, 100.0);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += life.sample(rng);
    EXPECT_NEAR(sum / n, 100.0, 2.0) << shape;
  }
}

TEST(Weibull, HazardDirectionMatchesShape) {
  const WeibullLifetime wearout(2.0, 100.0);
  EXPECT_LT(wearout.hazard(10.0), wearout.hazard(100.0));
  const WeibullLifetime infant(0.5, 100.0);
  EXPECT_GT(infant.hazard(10.0), infant.hazard(100.0));
}

TEST(Weibull, ValidatesParameters) {
  EXPECT_THROW(WeibullLifetime(0.0, 100.0), ContractViolation);
  EXPECT_THROW(WeibullLifetime(1.0, 0.0), ContractViolation);
  const WeibullLifetime infant(0.5, 100.0);
  EXPECT_THROW((void)infant.hazard(0.0), ContractViolation);
}

models::NoInternalRaidParams accelerated(int fault_tolerance) {
  models::NoInternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = fault_tolerance;
  p.drives_per_node = 3;
  p.node_failure = PerHour(0.002);
  p.drive_failure = PerHour(0.003);
  p.node_rebuild = PerHour(1.0);
  p.drive_rebuild = PerHour(3.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

class WeibullReduction : public ::testing::TestWithParam<int> {};

TEST_P(WeibullReduction, ShapeOneMatchesMarkovModel) {
  // With both shapes = 1 the component-level non-Markovian simulator is
  // distributionally identical to the Markov chain.
  const int k = GetParam();
  const auto params = accelerated(k);
  const models::NoInternalRaidModel model(params);
  const double analytic = model.mttdl_exact().value();
  sim::WeibullStorageSimulator simulator(params, sim::WeibullShapes{1.0, 1.0},
                                         909 + static_cast<std::uint64_t>(k));
  const sim::MttdlEstimate e = simulator.estimate(3000);
  EXPECT_NEAR(e.mean_hours, analytic, 5.0 * e.stderr_hours)
      << "k=" << k << " analytic=" << analytic << " sim=" << e.mean_hours;
}

INSTANTIATE_TEST_SUITE_P(FaultTolerances, WeibullReduction,
                         ::testing::Values(1, 2));

TEST(WeibullSimulator, WearoutShapeChangesMttdl) {
  // At fixed MTTF, wearout (shape 2) concentrates lifetimes near the
  // mean; with repairs renewing components, coincident double failures
  // within a short rebuild window become RARER than exponential (the
  // hazard right after a renewal is ~0). MTTDL therefore rises — the
  // exponential assumption is conservative in this regime.
  const auto params = accelerated(2);
  sim::WeibullStorageSimulator exponential(params, sim::WeibullShapes{1.0, 1.0},
                                           1001);
  sim::WeibullStorageSimulator wearout(params, sim::WeibullShapes{2.0, 2.0},
                                       1002);
  const auto e_exp = exponential.estimate(2500);
  const auto e_wear = wearout.estimate(2500);
  EXPECT_GT(e_wear.mean_hours,
            e_exp.mean_hours + 3.0 * (e_exp.stderr_hours + e_wear.stderr_hours));
}

TEST(WeibullSimulator, InfantMortalityShapeChangesMttdl) {
  // Decreasing hazard: a fresh (just-renewed) component is MORE likely to
  // fail immediately, so failures cluster around repairs — MTTDL drops
  // below the exponential prediction.
  const auto params = accelerated(2);
  sim::WeibullStorageSimulator exponential(params, sim::WeibullShapes{1.0, 1.0},
                                           1003);
  sim::WeibullStorageSimulator infant(params, sim::WeibullShapes{0.5, 0.5},
                                      1004);
  const auto e_exp = exponential.estimate(2500);
  const auto e_infant = infant.estimate(2500);
  EXPECT_LT(e_infant.mean_hours,
            e_exp.mean_hours -
                3.0 * (e_exp.stderr_hours + e_infant.stderr_hours));
}

}  // namespace
}  // namespace nsrel
