// Failure-injection soak test: a long randomized lifecycle of writes,
// node/drive failures (never exceeding the code's tolerance between
// rebuilds), rebuilds, and reads — asserting after every step that no
// stored object is ever lost or corrupted and that rebuilds always return
// the system to full redundancy.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "brick/object_store.hpp"
#include "util/rng.hpp"

namespace nsrel::brick {
namespace {

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, RandomLifecycleNeverLosesData) {
  Xoshiro256 rng(GetParam());
  StoreParams params;
  params.node_count = 14;
  params.drives_per_node = 3;
  params.drive_capacity = kilobytes(512.0);
  params.redundancy_set_size = 7;
  params.fault_tolerance = 3;
  params.chunk_size = kilobytes(1.0);
  ObjectStore store(params);

  std::map<ObjectId, std::vector<std::uint8_t>> ground_truth;
  int outstanding_failures = 0;
  // Fail-in-place: nothing ever revives, so cap cumulative deaths the way
  // an over-provisioned deployment would (keep >= R live nodes with slack
  // for placement, and most drives alive for capacity).
  int dead_nodes = 0;
  int dead_drives = 0;
  // Leave slack beyond R: rebuild targets must sit OUTSIDE each degraded
  // stripe's surviving set, so at least R + t usable nodes must remain.
  const int max_dead_nodes = params.node_count - params.redundancy_set_size -
                             params.fault_tolerance;
  const int max_dead_drives = params.node_count;  // 1/3 of all drives
  std::vector<bool> node_dead(static_cast<std::size_t>(params.node_count),
                              false);

  const auto verify_all = [&] {
    for (const auto& [id, bytes] : ground_truth) {
      ASSERT_EQ(store.read(id), bytes) << "object " << id;
    }
  };

  for (int step = 0; step < 120; ++step) {
    const double action = rng.uniform();
    if (action < 0.40) {
      // Write a random object (sized to keep capacity comfortable).
      const std::size_t size = 200 + rng.below(6000);
      std::vector<std::uint8_t> bytes(size);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
      const ObjectId id = store.write(bytes);
      ground_truth.emplace(id, std::move(bytes));
    } else if (action < 0.65 &&
               outstanding_failures < params.fault_tolerance) {
      // Inject a failure while staying within tolerance.
      if (rng.bernoulli(0.5) && dead_nodes < max_dead_nodes) {
        // Node failure: pick a live node.
        int victim = -1;
        for (int attempt = 0; attempt < 50 && victim < 0; ++attempt) {
          const int candidate =
              static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(params.node_count)));
          if (!node_dead[static_cast<std::size_t>(candidate)]) {
            victim = candidate;
          }
        }
        if (victim >= 0) {
          store.fail_node(victim);
          node_dead[static_cast<std::size_t>(victim)] = true;
          ++outstanding_failures;
          ++dead_nodes;
        }
      } else if (dead_drives < max_dead_drives) {
        const int victim = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(params.node_count)));
        if (!node_dead[static_cast<std::size_t>(victim)]) {
          store.fail_drive(
              victim, static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(params.drives_per_node))));
          ++outstanding_failures;
          ++dead_drives;
        }
      }
    } else if (action < 0.80) {
      // Rebuild everything lost so far.
      ASSERT_NO_THROW((void)store.rebuild());
      EXPECT_TRUE(store.fully_redundant());
      outstanding_failures = 0;
    } else {
      verify_all();
    }
  }
  // Final: rebuild and verify byte-exactness of every object ever written.
  (void)store.rebuild();
  EXPECT_TRUE(store.fully_redundant());
  verify_all();
  EXPECT_GT(ground_truth.size(), 10u);  // the soak actually wrote things
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace nsrel::brick
