// Tests for the concurrent repair engine: fault-schedule parsing, clean
// and degraded repair lifecycles, the mid-rebuild failure-injection
// matrix, jobs-invariance (byte-identical store state and report at any
// --jobs), typed capacity/data-loss outcomes, and the analytic
// cross-validations against rebuild::RebuildPlanner's section-5.1 flows,
// rebuild::DegradedModel's read amplification, and the no-internal-RAID
// MTTDL under compressed Poisson fault schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "brick/object_store.hpp"
#include "ctmc/chain.hpp"
#include "ctmc/transient.hpp"
#include "models/no_internal_raid.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "rebuild/degraded.hpp"
#include "rebuild/planner.hpp"
#include "repair/fault_schedule.hpp"
#include "repair/repair.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace nsrel::repair {
namespace {

using brick::ObjectId;
using brick::ObjectStore;
using brick::StoreParams;

std::vector<std::uint8_t> random_bytes(std::size_t size, Xoshiro256& rng) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

StoreParams small_params() {
  StoreParams p;
  p.node_count = 12;
  p.drives_per_node = 3;
  p.drive_capacity = kilobytes(256.0);
  p.redundancy_set_size = 6;
  p.fault_tolerance = 2;
  p.chunk_size = kilobytes(1.0);
  return p;
}

/// Builds a store with `objects` random objects of `object_size` bytes,
/// deterministically from `seed` — two calls build byte-identical stores
/// (the jobs-invariance tests rely on this).
ObjectStore populated_store(const StoreParams& params, int objects,
                            std::size_t object_size, std::uint64_t seed) {
  ObjectStore store(params);
  Xoshiro256 rng(seed);
  for (int i = 0; i < objects; ++i) {
    (void)store.write(random_bytes(object_size, rng));
  }
  return store;
}

FaultSchedule parse_ok(const std::string& text) {
  const Expected<FaultSchedule> parsed = parse_fault_schedule(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.has_value() ? parsed.value() : FaultSchedule{};
}

// --- fault-schedule format --------------------------------------------

TEST(FaultSchedule, ParsesEveryTriggerAndFaultKind) {
  const FaultSchedule s =
      parse_ok("before:0 node:3; after:2 drive:1.0; time:0.5 node:7;");
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].trigger, TriggerKind::kBeforeTask);
  EXPECT_EQ(s.events[0].index, 0u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kNode);
  EXPECT_EQ(s.events[0].node, 3);
  EXPECT_EQ(s.events[1].trigger, TriggerKind::kAfterTask);
  EXPECT_EQ(s.events[1].index, 2u);
  EXPECT_EQ(s.events[1].kind, FaultKind::kDrive);
  EXPECT_EQ(s.events[1].node, 1);
  EXPECT_EQ(s.events[1].drive, 0);
  EXPECT_EQ(s.events[2].trigger, TriggerKind::kAtTime);
  EXPECT_DOUBLE_EQ(s.events[2].time_seconds, 0.5);
  EXPECT_EQ(s.events[2].node, 7);
}

TEST(FaultSchedule, FormatRoundTripsThroughParser) {
  const FaultSchedule s =
      parse_ok("before:4 drive:2.3; after:0 node:11; time:1.25 drive:0.0");
  for (const FaultEvent& event : s.events) {
    const FaultSchedule again = parse_ok(format_fault_event(event));
    ASSERT_EQ(again.events.size(), 1u);
    EXPECT_EQ(again.events[0], event);
  }
}

TEST(FaultSchedule, RejectsMalformedInput) {
  for (const char* bad :
       {"nonsense", "before:x node:1", "before:1 gremlin:2", "when:3 node:1",
        "before:2 node:abc", "time:-1 node:0", "after:1 drive:5",
        "before:1", "node:3 before:1"}) {
    const Expected<FaultSchedule> parsed = parse_fault_schedule(bad);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.error().code, ErrorCode::kInvalidParameter) << bad;
  }
}

TEST(FaultSchedule, EmptyAndBlankInputsAreEmptySchedules) {
  EXPECT_TRUE(parse_ok("").empty());
  EXPECT_TRUE(parse_ok("  ;  ; ").empty());
}

// --- planning ----------------------------------------------------------

TEST(RepairPlan, PartitionsLostShardsIntoOrderedPerStripeTasks) {
  ObjectStore store = populated_store(small_params(), 20, 9000, 0xA11CE);
  ASSERT_TRUE(plan_repair(store).tasks.empty());  // healthy: nothing to do
  store.fail_node(2);
  const RepairPlan plan = plan_repair(store);
  const std::vector<brick::StripeRef> degraded = store.degraded_stripes();
  ASSERT_EQ(plan.tasks.size(), degraded.size());
  ASSERT_FALSE(plan.tasks.empty());
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    EXPECT_EQ(plan.tasks[i].stripe, degraded[i]);
    ASSERT_EQ(plan.tasks[i].lost_shards.size(), 1u);  // one node failed
    if (i > 0) {
      EXPECT_TRUE(plan.tasks[i - 1].stripe < plan.tasks[i].stripe);
    }
  }
  EXPECT_EQ(plan.shard_count(), degraded.size());
}

// --- clean repair lifecycle -------------------------------------------

TEST(RepairRun, RestoresFullRedundancyAfterNodeFailure) {
  Xoshiro256 rng(7);
  ObjectStore store(small_params());
  std::map<ObjectId, std::vector<std::uint8_t>> originals;
  for (int i = 0; i < 15; ++i) {
    const auto bytes = random_bytes(8000, rng);
    originals[store.write(bytes)] = bytes;
  }
  store.fail_node(4);
  const std::size_t degraded = store.degraded_stripes().size();
  ASSERT_GT(degraded, 0u);

  const RepairReport report = run_repair(store);
  EXPECT_TRUE(report.fully_successful());
  EXPECT_TRUE(store.fully_redundant());
  EXPECT_EQ(report.stripes_attempted, degraded);
  EXPECT_EQ(report.shards_repaired, degraded);  // one shard lost per stripe
  EXPECT_EQ(report.stripes_failed, 0u);
  EXPECT_EQ(report.outcomes.size(), degraded);
  for (const RepairOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.result.has_value());
  }
  for (const auto& [id, bytes] : originals) EXPECT_EQ(store.read(id), bytes);

  // Re-running on the repaired store is a no-op.
  const RepairReport again = run_repair(store);
  EXPECT_EQ(again.stripes_attempted, 0u);
  EXPECT_EQ(again.shards_repaired, 0u);
  EXPECT_DOUBLE_EQ(again.duration_seconds, 0.0);
}

TEST(RepairRun, RepairsUpToToleranceManyFailures) {
  ObjectStore store = populated_store(small_params(), 15, 8000, 0xBEEF);
  store.fail_node(0);
  store.fail_drive(3, 1);  // t = 2: node + drive concurrently is repairable
  const RepairReport report = run_repair(store);
  EXPECT_TRUE(report.fully_successful());
  EXPECT_TRUE(store.fully_redundant());
}

TEST(RepairRun, BeyondToleranceBecomesTypedDataLossOutcomes) {
  ObjectStore store = populated_store(small_params(), 15, 8000, 0xD00D);
  store.fail_node(0);
  store.fail_node(1);
  store.fail_node(2);  // t = 2: stripes holding all three are gone
  std::size_t lost_stripes = 0;
  for (const brick::StripeRef& ref : store.degraded_stripes()) {
    if (store.stripe_status(ref).missing() > 2) ++lost_stripes;
  }
  ASSERT_GT(lost_stripes, 0u);

  const RepairReport report = run_repair(store);  // must not throw
  EXPECT_EQ(report.stripes_failed, lost_stripes);
  std::size_t data_loss_outcomes = 0;
  for (const RepairOutcome& outcome : report.outcomes) {
    if (!outcome.result.has_value()) {
      EXPECT_EQ(outcome.result.error().code, ErrorCode::kDataLoss);
      ++data_loss_outcomes;
    }
  }
  EXPECT_EQ(data_loss_outcomes, lost_stripes);
  // Every stripe not beyond tolerance was still repaired.
  for (const brick::StripeRef& ref : store.degraded_stripes()) {
    EXPECT_GT(store.stripe_status(ref).missing(), 2);
  }
}

TEST(RepairRun, NoSpareTargetBecomesTypedCapacityOutcomeAfterRetries) {
  // node_count == R: a failed node leaves no live node outside any
  // stripe, so every task exhausts its retries on capacity.
  StoreParams p;
  p.node_count = 4;
  p.drives_per_node = 2;
  p.drive_capacity = kilobytes(64.0);
  p.redundancy_set_size = 4;
  p.fault_tolerance = 1;
  p.chunk_size = kilobytes(1.0);
  ObjectStore store = populated_store(p, 6, 5000, 0xCAFE);
  store.fail_node(1);
  const std::size_t degraded = store.degraded_stripes().size();
  ASSERT_GT(degraded, 0u);

  RepairOptions options;
  options.max_retries = 2;
  const RepairReport report = run_repair(store, FaultSchedule{}, options);
  EXPECT_EQ(report.stripes_failed, degraded);
  EXPECT_EQ(report.retries,
            static_cast<std::uint64_t>(options.max_retries) * degraded);
  for (const RepairOutcome& outcome : report.outcomes) {
    ASSERT_FALSE(outcome.result.has_value());
    EXPECT_EQ(outcome.result.error().code, ErrorCode::kCapacityExhausted);
  }
  // The data itself is still readable (t-tolerant degraded reads).
  for (const brick::StripeRef& ref : store.degraded_stripes()) {
    EXPECT_TRUE(store.try_reconstruct_stripe(ref).has_value());
  }
}

// --- mid-rebuild fault-injection matrix -------------------------------

TEST(RepairFaults, SurvivorSourceNodeDiesMidRun) {
  ObjectStore store = populated_store(small_params(), 20, 9000, 0x5EED);
  store.fail_node(0);
  // Node 1 sources survivor shards for many of node 0's stripes; kill it
  // after three tasks have committed. t = 2, so everything stays
  // repairable — the engine must re-plan and finish.
  const FaultSchedule schedule = parse_ok("after:3 node:1");
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_GT(report.replans, 0u);
  EXPECT_TRUE(report.fully_successful());
  EXPECT_TRUE(store.fully_redundant());
}

TEST(RepairFaults, RepairTargetNodeDiesMidRun) {
  // Dry run to learn which node receives the first repaired shard, then
  // replay on an identical store with a schedule that kills that target
  // right after the first commit — re-losing the repaired shard.
  const auto build = [] {
    ObjectStore store = populated_store(small_params(), 20, 9000, 0x7A67);
    store.fail_node(5);
    return store;
  };
  ObjectStore probe = build();
  const RepairReport dry = run_repair(probe);
  ASSERT_TRUE(dry.fully_successful());
  ASSERT_FALSE(dry.outcomes.empty());
  ASSERT_TRUE(dry.outcomes[0].result.has_value());
  const int target =
      dry.outcomes[0].result.value().shards.at(0).location.node;

  ObjectStore store = build();
  FaultSchedule schedule;
  FaultEvent event;
  event.trigger = TriggerKind::kAfterTask;
  event.index = 1;
  event.kind = FaultKind::kNode;
  event.node = target;
  schedule.events.push_back(event);
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_TRUE(report.fully_successful());
  EXPECT_TRUE(store.fully_redundant());
  // The re-lost stripe was repaired twice: two success outcomes.
  const brick::StripeRef first = dry.outcomes[0].stripe;
  std::size_t attempts = 0;
  for (const RepairOutcome& outcome : report.outcomes) {
    if (outcome.stripe == first) ++attempts;
  }
  EXPECT_EQ(attempts, 2u);
}

TEST(RepairFaults, SecondFailureExceedingToleranceMidRun) {
  StoreParams p = small_params();
  p.fault_tolerance = 1;
  p.redundancy_set_size = 5;
  ObjectStore store = populated_store(p, 20, 9000, 0xF00D);
  store.fail_node(0);
  // t = 1: a second node death mid-repair pushes the not-yet-repaired
  // stripes shared with node 0 beyond tolerance.
  const FaultSchedule schedule = parse_ok("after:2 node:1");
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});  // must not throw
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_GT(report.stripes_failed, 0u);
  for (const RepairOutcome& outcome : report.outcomes) {
    if (!outcome.result.has_value()) {
      EXPECT_EQ(outcome.result.error().code, ErrorCode::kDataLoss);
    }
  }
  // Everything still repairable was repaired.
  for (const brick::StripeRef& ref : store.degraded_stripes()) {
    EXPECT_GT(store.stripe_status(ref).missing(), p.fault_tolerance);
  }
}

TEST(RepairFaults, TimeTriggeredFaultFiresOnSimulatedClock) {
  ObjectStore store = populated_store(small_params(), 20, 9000, 0x71ED);
  store.fail_node(3);
  ObjectStore reference = populated_store(small_params(), 20, 9000, 0x71ED);
  reference.fail_node(3);
  const double full_duration = run_repair(reference).duration_seconds;
  ASSERT_GT(full_duration, 0.0);

  FaultSchedule schedule =
      parse_ok("time:" + std::to_string(full_duration / 2.0) + " node:7");
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_GE(report.duration_seconds, full_duration / 2.0);
  EXPECT_TRUE(report.fully_successful());  // t = 2 absorbs the second hit
  EXPECT_TRUE(store.fully_redundant());
}

TEST(RepairFaults, UnreachedEventsFireAtTheFinalBarrier) {
  ObjectStore store = populated_store(small_params(), 10, 6000, 0x0DD);
  store.fail_node(0);
  // Task index far beyond the plan: the event must still fire (final
  // barrier), degrade fresh stripes, and those must then be repaired too.
  const FaultSchedule schedule = parse_ok("before:1000000 node:6");
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_TRUE(report.fully_successful());
  EXPECT_TRUE(store.fully_redundant());
  EXPECT_FALSE(store.node(6).alive());
}

TEST(RepairFaults, OutOfRangeAndRepeatFaultsAreNoOps) {
  ObjectStore store = populated_store(small_params(), 10, 6000, 0xABBA);
  store.fail_node(2);
  // Replayed ids a smaller store can't host, plus a repeat of an already
  // failed node: all no-ops, none counted as injected.
  const FaultSchedule schedule =
      parse_ok("before:0 node:99; before:0 drive:4.77; after:1 node:2");
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});
  EXPECT_EQ(report.injected_faults, 0u);
  EXPECT_TRUE(report.fully_successful());
  EXPECT_TRUE(store.fully_redundant());
}

// --- jobs-invariance ---------------------------------------------------

TEST(RepairDeterminism, ByteIdenticalStateAndReportAcrossJobs) {
  const std::vector<std::string> schedules = {
      "",
      "before:0 node:1",
      "after:3 node:7",
      "after:1 drive:2.1; after:5 node:9",
      "time:0.02 node:6; before:8 drive:0.0",
      "after:2 node:1; after:4 node:3",  // second fault beyond t on some
  };
  for (const std::string& text : schedules) {
    const FaultSchedule schedule = parse_ok(text);
    std::vector<std::uint64_t> fingerprints;
    std::vector<std::string> reports;
    for (const int jobs : {1, 8}) {
      ObjectStore store = populated_store(small_params(), 25, 9000, 0x10B5);
      store.fail_node(4);
      RepairOptions options;
      options.jobs = jobs;
      const RepairReport report = run_repair(store, schedule, options);
      fingerprints.push_back(store.content_fingerprint());
      reports.push_back(render_repair_report(report));
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]) << "schedule: " << text;
    EXPECT_EQ(reports[0], reports[1]) << "schedule: " << text;
  }
}

TEST(RepairDeterminism, RepeatedRunsAreBitStable) {
  const FaultSchedule schedule = parse_ok("after:2 node:8; time:0.05 node:2");
  std::vector<std::string> reports;
  for (int repeat = 0; repeat < 2; ++repeat) {
    ObjectStore store = populated_store(small_params(), 25, 9000, 0x9999);
    store.fail_node(10);
    RepairOptions options;
    options.jobs = 4;
    reports.push_back(render_repair_report(
        run_repair(store, schedule, options)));
  }
  EXPECT_EQ(reports[0], reports[1]);
}

// --- observability -----------------------------------------------------

TEST(RepairProbes, CountersMatchReport) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  registry.set_enabled(true);
  ObjectStore store = populated_store(small_params(), 15, 8000, 0x0B5);
  store.fail_node(1);
  const FaultSchedule schedule = parse_ok("after:2 node:6");
  const RepairReport report =
      run_repair(store, schedule, RepairOptions{});
  registry.set_enabled(false);

  std::map<std::string, std::uint64_t> counters;
  for (const auto& row : registry.snapshot().counters) {
    counters[row.name] = row.value;
  }
  registry.reset();
  EXPECT_EQ(counters[obs::probe::kRepairShardsRepaired],
            report.shards_repaired);
  EXPECT_EQ(counters[obs::probe::kRepairInjectedFaults],
            report.injected_faults);
  EXPECT_EQ(counters[obs::probe::kRepairReplans], report.replans);
  EXPECT_EQ(counters[obs::probe::kRepairRetries], report.retries);
  EXPECT_EQ(counters[obs::probe::kRepairStripesFailed],
            report.stripes_failed);
}

TEST(RepairProbes, DegradedReadsAreCounted) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  registry.set_enabled(true);
  ObjectStore store = populated_store(small_params(), 5, 8000, 0xDEC0);
  const ObjectId first = 1;
  store.fail_node(0);
  (void)store.read(first);
  registry.set_enabled(false);
  std::uint64_t degraded = 0;
  for (const auto& row : registry.snapshot().counters) {
    if (row.name == obs::probe::kBrickDegradedReads) degraded = row.value;
  }
  registry.reset();
  EXPECT_GT(degraded, 0u);
}

// --- analytic cross-validation ----------------------------------------

TEST(RepairAnalytic, MeasuredFlowsMatchRebuildModel) {
  // ~45 stripes per surviving node: enough for the rotating layout's
  // evenness to show through in per-node flows.
  StoreParams p = small_params();
  p.drive_capacity = megabytes(1.0);
  ObjectStore store = populated_store(p, 100, 9000, 0xF10F);
  store.fail_node(0);
  const std::size_t lost = store.degraded_stripes().size();
  ASSERT_GT(lost, 100u);

  RepairOptions options;
  options.timing.bytes_per_second = 64.0 * 1024.0;
  const RepairReport report = run_repair(store, FaultSchedule{}, options);
  ASSERT_TRUE(report.fully_successful());

  const double chunk = p.chunk_size.value();
  const double node_data = static_cast<double>(lost) * chunk;
  const int survivors = p.node_count - 1;
  const int k = p.redundancy_set_size - p.fault_tolerance;

  rebuild::RebuildParams model_params;
  model_params.node_set_size = p.node_count;
  model_params.redundancy_set_size = p.redundancy_set_size;
  model_params.fault_tolerance = p.fault_tolerance;
  const rebuild::RebuildPlanner planner(model_params);
  const rebuild::DataFlows flows = planner.flows();

  // Totals are exact: k survivor chunks in and one rebuilt chunk out per
  // lost stripe, which is the flow model's interconnect accounting.
  double total_sourced = 0.0;
  double total_received = 0.0;
  for (const auto& [node, bytes] : report.sourced_bytes) {
    EXPECT_NE(node, 0);  // the dead node sources nothing
    total_sourced += bytes;
  }
  for (const auto& [node, bytes] : report.received_bytes) {
    EXPECT_NE(node, 0);
    total_received += bytes;
  }
  EXPECT_DOUBLE_EQ(total_received, node_data);
  EXPECT_DOUBLE_EQ(total_sourced, flows.interconnect_total * node_data);
  EXPECT_DOUBLE_EQ(report.bytes_reconstructed, node_data);

  // The model's per-node sourced share (R-t)/(N-1) is the mean over
  // survivors, and the measured mean matches it exactly. (The per-node
  // distribution is deliberately NOT asserted even: decode consumes the
  // first k available shards in shard-index order, so the rotating
  // layout systematically skips each stripe's last survivor — the
  // aggregate flow is the model's quantity, the split is layout policy.)
  EXPECT_NEAR(total_sourced / survivors / node_data, flows.sourced_per_node,
              1e-12);
  EXPECT_GE(static_cast<int>(report.sourced_bytes.size()), k);
  EXPECT_LE(static_cast<int>(report.sourced_bytes.size()), survivors);

  // Received bytes ARE spread evenly: the capacity-reservation ledger
  // targets the most-free node, which balances within a chunk or two of
  // the model's 1/(N-1) share.
  for (int node = 1; node < p.node_count; ++node) {
    const auto received = report.received_bytes.find(node);
    ASSERT_NE(received, report.received_bytes.end()) << node;
    EXPECT_NEAR(received->second / node_data, flows.rebuilt_per_node,
                0.35 * flows.rebuilt_per_node)
        << node;
  }

  // The simulated rebuild duration is exactly the moved bytes over the
  // configured bandwidth: (k + 1) chunks per lost stripe.
  const double moved =
      static_cast<double>(lost) * (static_cast<double>(k) + 1.0) * chunk;
  EXPECT_NEAR(report.duration_seconds,
              moved / options.timing.bytes_per_second, 1e-9);
}

TEST(RepairAnalytic, DegradedReadAmplificationMatchesModel) {
  StoreParams p = small_params();
  p.drive_capacity = megabytes(1.0);
  ObjectStore store(p);
  Xoshiro256 rng(0xA3D);
  std::vector<ObjectId> objects;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 60; ++i) {
    const std::size_t size = 9000;
    objects.push_back(store.write(random_bytes(size, rng)));
    sizes.push_back(size);
  }
  store.fail_node(0);

  rebuild::DegradedParams model_params;
  model_params.rebuild.node_set_size = p.node_count;
  model_params.rebuild.redundancy_set_size = p.redundancy_set_size;
  model_params.rebuild.fault_tolerance = p.fault_tolerance;
  const double predicted =
      rebuild::DegradedModel(model_params).impact().read_amplification;

  workload::WorkloadParams wl;
  wl.operations = 4000;
  wl.read_bytes = static_cast<std::size_t>(p.chunk_size.value());
  const workload::WorkloadResult degraded =
      workload::run_read_workload(store, objects, sizes, wl);
  EXPECT_GT(degraded.degraded_reads, 0u);
  EXPECT_NEAR(degraded.read_amplification, predicted, 0.10 * predicted);

  // After a full repair the amplification returns to exactly 1.
  ASSERT_TRUE(run_repair(store).fully_successful());
  const workload::WorkloadResult repaired =
      workload::run_read_workload(store, objects, sizes, wl);
  EXPECT_EQ(repaired.degraded_reads, 0u);
  EXPECT_DOUBLE_EQ(repaired.read_amplification, 1.0);
}

TEST(RepairAnalytic, CompressedScheduleLossFrequencyMatchesMttdl) {
  // N = 6, R = 4, t = 1: every pair of nodes shares stripes, so any two
  // failures with overlapping repair windows lose data — the
  // no-internal-RAID FT1 absorption path. Poisson node failures are
  // compressed onto the simulated clock. N > R + 1 keeps repair possible
  // through two (spread-out) node deaths, matching the chain's
  // repair-restores-health assumption for every non-loss path the
  // mission can realistically take.
  StoreParams p;
  p.node_count = 6;
  p.drives_per_node = 2;
  p.drive_capacity = kilobytes(64.0);
  p.redundancy_set_size = 4;
  p.fault_tolerance = 1;
  p.chunk_size = Bytes(256.0);

  const int objects = 40;
  const std::size_t object_size = 3 * 256;  // one stripe per object
  const double lambda = 0.02;               // per node, per sim second
  const double mission = 8.0;

  // Rebuild window: 4/6 of stripes touch a given node, each moving
  // k + 1 = 4 chunks.
  const double lost_stripes = objects * 4.0 / 6.0;
  const double window = 5.0;
  RepairOptions options;
  options.timing.bytes_per_second = lost_stripes * 4.0 * 256.0 / window;

  const int trials = 300;
  int losses = 0;
  Xoshiro256 rng(0x377D1);
  for (int trial = 0; trial < trials; ++trial) {
    ObjectStore store(p);
    Xoshiro256 data_rng(0xDA7A);
    for (int i = 0; i < objects; ++i) {
      (void)store.write(random_bytes(object_size, data_rng));
    }
    // Pooled Poisson process at rate N*lambda with a uniform node pick;
    // hits on already-dead nodes are no-ops, which thins the stream to
    // exactly the chain's (N-j)*lambda.
    FaultSchedule schedule;
    double t = rng.exponential(p.node_count * lambda);
    while (t < mission) {
      FaultEvent event;
      event.trigger = TriggerKind::kAtTime;
      event.time_seconds = t;
      event.kind = FaultKind::kNode;
      event.node = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(p.node_count)));
      schedule.events.push_back(event);
      t += rng.exponential(p.node_count * lambda);
    }
    const RepairReport report = run_repair(store, schedule, options);
    bool lost = false;
    for (const RepairOutcome& outcome : report.outcomes) {
      if (!outcome.result.has_value() &&
          outcome.result.error().code == ErrorCode::kDataLoss) {
        lost = true;
      }
    }
    losses += lost ? 1 : 0;
  }
  const double observed = static_cast<double>(losses) / trials;

  models::NoInternalRaidParams model;
  model.node_set_size = p.node_count;
  model.redundancy_set_size = p.redundancy_set_size;
  model.fault_tolerance = 1;
  model.drives_per_node = p.drives_per_node;
  model.node_failure = PerHour(lambda);  // sim seconds play the hours role
  model.drive_failure = PerHour(1e-12);
  // The engine repairs in a deterministic window d; the chain repairs
  // exponentially. Use the rate whose exponential repair has the same
  // per-incident loss probability as the deterministic window:
  //   (N-1)L / ((N-1)L + mu) = 1 - exp(-(N-1)L d)
  // => mu = (N-1)L / expm1((N-1)L d).
  const double second_hit_rate = (p.node_count - 1) * lambda;
  model.node_rebuild =
      PerHour(second_hit_rate / std::expm1(second_hit_rate * window));
  model.drive_rebuild = PerHour(1e6);
  model.her_per_byte = 1e-30;
  // Exact transient absorption probability (uniformization) rather than
  // the asymptotic 1 - exp(-T/MTTDL): with a mission only a few repair
  // windows long, the "needs two failures" start-up transient matters.
  const models::NoInternalRaidModel analytic(model);
  const ctmc::Chain chain = analytic.chain();
  const ctmc::TransientSolver solver(chain);
  const double predicted =
      1.0 - solver.survival(mission, models::NoInternalRaidModel::root_state());

  ASSERT_GT(predicted, 0.05);
  ASSERT_LT(predicted, 0.95);
  // Remaining modeling gap: partial repair shaves the tail of the
  // vulnerability window, a repaired store keeps its dead node (lower
  // subsequent failure pressure than the chain's fully-restored state),
  // and the binomial sampling error is ~0.02 at 300 trials.
  EXPECT_NEAR(observed, predicted, 0.30 * predicted)
      << "observed " << observed << " predicted " << predicted;
}

}  // namespace
}  // namespace nsrel::repair
