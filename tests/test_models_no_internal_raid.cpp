// Tests for the no-internal-RAID models: the recursive chain construction
// vs the appendix's block-recursive absorption matrix, exact-vs-closed-form
// agreement, and structural properties of the failure-word state space.
#include <algorithm>
#include <cstddef>
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ctmc/absorbing.hpp"
#include "models/no_internal_raid.hpp"
#include "util/assert.hpp"

namespace nsrel::models {
namespace {

NoInternalRaidParams baseline(int fault_tolerance) {
  NoInternalRaidParams p;
  p.node_set_size = 64;
  p.redundancy_set_size = 8;
  p.fault_tolerance = fault_tolerance;
  p.drives_per_node = 12;
  p.node_failure = PerHour(1.0 / 400'000.0);
  p.drive_failure = PerHour(1.0 / 300'000.0);
  p.node_rebuild = PerHour(0.19);
  p.drive_rebuild = PerHour(12.0 * 0.19);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

TEST(NoInternalRaid, ChainSizeIsPowerOfTwoTree) {
  for (int k = 1; k <= 5; ++k) {
    const NoInternalRaidModel model(baseline(k));
    const auto chain = model.chain();
    // 2^(k+1)-1 transient states + 1 absorbing.
    EXPECT_EQ(chain.transient_count(), (std::size_t{2} << k) - 1) << k;
    EXPECT_EQ(chain.absorbing_count(), 1u);
  }
}

TEST(NoInternalRaid, Ft1ChainMatchesFigure8Structure) {
  const NoInternalRaidParams p = baseline(1);
  const NoInternalRaidModel model(p);
  const auto chain = model.chain();
  // States: A (absorbing), root "0", "N", "d".
  const auto root = chain.find_state("0");
  const auto node_failed = chain.find_state("N");
  const auto drive_failed = chain.find_state("d");
  EXPECT_EQ(root, NoInternalRaidModel::root_state());
  // Exit rate of root: N(lambda_N + d lambda_d) (failure flow conserved
  // regardless of the h split).
  const double expected_exit =
      64.0 * (p.node_failure.value() + 12.0 * p.drive_failure.value());
  EXPECT_NEAR(chain.exit_rate(root), expected_exit, 1e-12 * expected_exit);
  // Exit of "N": repair mu_N plus (N-1)(lambda_N + d lambda_d).
  const double degraded_exit =
      p.node_rebuild.value() +
      63.0 * (p.node_failure.value() + 12.0 * p.drive_failure.value());
  EXPECT_NEAR(chain.exit_rate(node_failed), degraded_exit,
              1e-12 * degraded_exit);
  EXPECT_GT(chain.exit_rate(drive_failed), chain.exit_rate(node_failed) -
                                              p.node_rebuild.value());
}

TEST(NoInternalRaid, ChainAndRecursiveMatrixAgreeEntrywise) {
  // The two independent constructions (labeled transition tree vs the
  // appendix's block recursion) must produce the same absorption matrix.
  for (int k = 1; k <= 4; ++k) {
    const NoInternalRaidModel model(baseline(k));
    const auto from_chain = model.chain().absorption_matrix();
    const auto from_recursion = model.absorption_matrix_recursive();
    ASSERT_EQ(from_chain.rows(), from_recursion.rows()) << "k=" << k;
    const double scale = from_chain.max_abs();
    for (std::size_t i = 0; i < from_chain.rows(); ++i) {
      for (std::size_t j = 0; j < from_chain.cols(); ++j) {
        EXPECT_NEAR(from_chain(i, j), from_recursion(i, j), 1e-12 * scale)
            << "k=" << k << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(NoInternalRaid, ExactAndRecursiveMatrixMttdlAgree) {
  for (int k = 1; k <= 5; ++k) {
    const NoInternalRaidModel model(baseline(k));
    const double via_chain = model.mttdl_exact().value();
    const double via_matrix = model.mttdl_recursive_matrix().value();
    EXPECT_NEAR(via_chain, via_matrix, 1e-8 * via_chain) << "k=" << k;
  }
}

TEST(NoInternalRaid, ClosedFormTracksExactForFt2AndUp) {
  // FT >= 2 keeps all h_alpha well below 1, so the paper's linear
  // hard-error model and our saturated chains agree to a few percent.
  for (int k = 2; k <= 4; ++k) {
    const NoInternalRaidModel model(baseline(k));
    const double exact = model.mttdl_exact().value();
    const double closed = model.mttdl_closed_form().value();
    EXPECT_NEAR(closed, exact, 0.05 * exact) << "k=" << k;
  }
}

TEST(NoInternalRaid, ClosedFormFt1WithinSaturationError) {
  // At FT1 h_N ~ 2 (saturates to 0.87), so linear-vs-saturated diverge;
  // they must still agree on the order of magnitude.
  const NoInternalRaidModel model(baseline(1));
  const double exact = model.mttdl_exact().value();
  const double closed = model.mttdl_closed_form().value();
  EXPECT_GT(closed / exact, 0.3);
  EXPECT_LT(closed / exact, 3.0);
}

TEST(NoInternalRaid, ClosedFormMatchesExactTightlyWithoutHer) {
  // With HER = 0 there is no saturation: only the usual lambda/mu-order
  // terms separate the approximation from the exact solve.
  for (int k = 1; k <= 4; ++k) {
    NoInternalRaidParams p = baseline(k);
    p.her_per_byte = 0.0;
    const NoInternalRaidModel model(p);
    const double exact = model.mttdl_exact().value();
    const double closed = model.mttdl_closed_form().value();
    EXPECT_NEAR(closed, exact, 0.01 * exact) << "k=" << k;
  }
}

TEST(NoInternalRaid, LRecursionMatchesHandComputedFt2) {
  // L_2(h^(2)) = d h (lambda_N + lambda_d)(mu_d lambda_N + mu_N lambda_d)
  // (derived in section 5.2.2 / Figure 12).
  const NoInternalRaidParams p = baseline(2);
  const NoInternalRaidModel model(p);
  const auto h = combinat::h_set(model.h_params());
  const double lambda_n = p.node_failure.value();
  const double lambda_d = p.drive_failure.value();
  const double computed =
      l_recursion(2, h, lambda_n, 12.0 * lambda_d, p.node_rebuild.value(),
                  p.drive_rebuild.value());
  const double h_base = combinat::h_base(model.h_params());
  const double expected = 12.0 * h_base * (lambda_n + lambda_d) *
                          (p.drive_rebuild.value() * lambda_n +
                           p.node_rebuild.value() * lambda_d);
  EXPECT_NEAR(computed, expected, 1e-12 * expected);
}

TEST(NoInternalRaid, HighFaultToleranceStaysPositiveAndTracksTheorem) {
  // Regression: at k = 6 (127 states, MTTDL ~ 1e19 h) a naive LU solve of
  // the absorption matrix returns a NEGATIVE time; the elimination solver
  // must stay positive and track the theorem's closed form.
  for (int k = 5; k <= 7; ++k) {
    NoInternalRaidParams p = baseline(k);
    p.redundancy_set_size = 12;
    const NoInternalRaidModel model(p);
    const double exact = model.mttdl_exact().value();
    const double via_matrix = model.mttdl_recursive_matrix().value();
    const double theorem = model.mttdl_closed_form().value();
    EXPECT_GT(exact, 0.0) << "k=" << k;
    EXPECT_NEAR(via_matrix, exact, 1e-8 * exact) << "k=" << k;
    EXPECT_NEAR(theorem, exact, 0.08 * exact) << "k=" << k;
  }
}

TEST(NoInternalRaid, MttdlGrowsSteeplyWithFaultTolerance) {
  double previous = 0.0;
  for (int k = 1; k <= 4; ++k) {
    const double mttdl = NoInternalRaidModel(baseline(k)).mttdl_exact().value();
    EXPECT_GT(mttdl, 50.0 * previous) << "k=" << k;
    previous = mttdl;
  }
}

TEST(NoInternalRaid, DriveFailuresDominateWithoutInternalRaid) {
  // d lambda_d = 4e-5 >> lambda_N = 2.5e-6, but node failures still carry
  // weight because node rebuilds are d times slower (lambda_N rides with
  // mu_d in the mixed denominators: mu_d*lambda_N ~ d*mu_N*lambda_d at
  // baseline). So suppressing node failures helps only modestly (<5x),
  // while suppressing drive failures helps by more than an order.
  NoInternalRaidParams base_params = baseline(2);
  base_params.her_per_byte = 0.0;
  NoInternalRaidParams robust_nodes = base_params;
  robust_nodes.node_failure = PerHour(1e-12);
  NoInternalRaidParams robust_drives = base_params;
  robust_drives.drive_failure = PerHour(1e-12);
  const double base = NoInternalRaidModel(base_params).mttdl_exact().value();
  const double no_node_failures =
      NoInternalRaidModel(robust_nodes).mttdl_exact().value();
  const double no_drive_failures =
      NoInternalRaidModel(robust_drives).mttdl_exact().value();
  EXPECT_LT(no_node_failures, 5.0 * base);
  EXPECT_GT(no_drive_failures, 10.0 * base);
}

TEST(NoInternalRaid, StateLabelsEncodeFailureWords) {
  const NoInternalRaidModel model(baseline(2));
  const auto chain = model.chain();
  // All 7 transient labels exist: 00, N0, NN, Nd, d0, dN, dd.
  for (const char* label : {"00", "N0", "NN", "Nd", "d0", "dN", "dd"}) {
    EXPECT_NO_THROW((void)chain.find_state(label)) << label;
  }
}

TEST(NoInternalRaid, RejectsInvalidParameters) {
  NoInternalRaidParams p = baseline(2);
  p.fault_tolerance = 0;
  EXPECT_THROW(NoInternalRaidModel{p}, ContractViolation);
  p = baseline(2);
  p.drive_rebuild = PerHour(0.0);
  EXPECT_THROW(NoInternalRaidModel{p}, ContractViolation);
  p = baseline(2);
  p.redundancy_set_size = 2;  // R <= k
  EXPECT_THROW(NoInternalRaidModel{p}, ContractViolation);
  p = baseline(2);
  p.fault_tolerance = 17;  // chain would be 2^18 states
  EXPECT_THROW(NoInternalRaidModel{p}, ContractViolation);
}

TEST(NoInternalRaid, FaultToleranceCapBoundaryIsExactlySixteen) {
  // The documented cap is fault_tolerance <= 16 (a 2^17-1 = 131071-state
  // absorption matrix). k = 16 must construct AND solve end to end on the
  // sparse path; k = 17 is a contract violation at construction.
  NoInternalRaidParams p = baseline(16);
  p.redundancy_set_size = 32;  // R must exceed k
  const NoInternalRaidModel model(p);
  const auto sparse = model.absorption_matrix_recursive_sparse();
  EXPECT_EQ(sparse.rows(), (std::size_t{2} << 16) - 1);
  EXPECT_EQ(model.absorption_rates_recursive().size(), sparse.rows());
  const double mttdl =
      model.mttdl_recursive_matrix(ctmc::SolverPolicy::kSparse).value();
  EXPECT_TRUE(std::isfinite(mttdl));
  EXPECT_GT(mttdl, 0.0);
  // 131071 states is far past the dense 4096-state ceiling, so the auto
  // policy must route to the same sparse elimination, bit for bit.
  EXPECT_EQ(model.mttdl_recursive_matrix(ctmc::SolverPolicy::kAuto).value(),
            mttdl);

  p.fault_tolerance = 17;
  EXPECT_THROW(NoInternalRaidModel{p}, ContractViolation);
}

TEST(NoInternalRaid, ConcurrentRepairBeatsSingleRepair) {
  // More repair throughput can only help; the gap widens as failures get
  // frequent relative to repairs.
  NoInternalRaidParams p = baseline(3);
  p.node_failure = PerHour(0.01);
  p.drive_failure = PerHour(0.01);
  const double single = NoInternalRaidModel(p).mttdl_exact().value();
  p.repair_policy = RepairPolicy::kConcurrent;
  const double concurrent = NoInternalRaidModel(p).mttdl_exact().value();
  EXPECT_GT(concurrent, 1.02 * single);
}

TEST(NoInternalRaid, RepairPoliciesCoincideAtFt1) {
  // With at most one outstanding failure the policies are identical.
  NoInternalRaidParams p = baseline(1);
  const double single = NoInternalRaidModel(p).mttdl_exact().value();
  p.repair_policy = RepairPolicy::kConcurrent;
  const double concurrent = NoInternalRaidModel(p).mttdl_exact().value();
  EXPECT_NEAR(concurrent, single, 1e-12 * single);
}

TEST(NoInternalRaid, SingleRepairIsConservativeByABoundedFactor) {
  // Concurrent repair multiplies the per-level repair throughput; for the
  // mixed mu_N/mu_d chains the gain at FT2 is modest (~7%: the dominant
  // dd path repairs at mu_d either way) but reaches ~4x at FT3 where LIFO
  // makes slow node rebuilds block fast drive rebuilds queued behind
  // them. The paper's single-repair chains are conservative by exactly
  // these factors.
  NoInternalRaidParams ft2 = baseline(2);
  const double ft2_single = NoInternalRaidModel(ft2).mttdl_exact().value();
  ft2.repair_policy = RepairPolicy::kConcurrent;
  const double ft2_concurrent = NoInternalRaidModel(ft2).mttdl_exact().value();
  EXPECT_GT(ft2_concurrent, ft2_single);
  EXPECT_LT(ft2_concurrent, 1.5 * ft2_single);

  NoInternalRaidParams ft3 = baseline(3);
  const double ft3_single = NoInternalRaidModel(ft3).mttdl_exact().value();
  ft3.repair_policy = RepairPolicy::kConcurrent;
  const double ft3_concurrent = NoInternalRaidModel(ft3).mttdl_exact().value();
  EXPECT_GT(ft3_concurrent, 2.0 * ft3_single);
  EXPECT_LT(ft3_concurrent, 6.0 * ft3_single);  // bounded by 3!
}

TEST(NoInternalRaid, MatrixPathsRejectConcurrentPolicy) {
  NoInternalRaidParams p = baseline(2);
  p.repair_policy = RepairPolicy::kConcurrent;
  const NoInternalRaidModel model(p);
  EXPECT_THROW((void)model.absorption_matrix_recursive(), ContractViolation);
  EXPECT_THROW((void)model.mttdl_recursive_matrix(), ContractViolation);
}

TEST(NoInternalRaid, LRecursionValidatesInput) {
  EXPECT_THROW(
      (void)l_recursion(2, std::vector<double>{0.1, 0.2}, 1.0, 1.0, 1.0, 1.0),
      ContractViolation);
}

class NirSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NirSweep, ClosedFormAgreesAcrossParameterSpace) {
  const auto [n, d, k] = GetParam();
  NoInternalRaidParams p = baseline(k);
  p.node_set_size = n;
  p.redundancy_set_size = std::min(8, n);
  p.drives_per_node = d;
  p.her_per_byte = 0.0;  // isolate the failure-path approximation
  const NoInternalRaidModel model(p);
  const double exact = model.mttdl_exact().value();
  const double closed = model.mttdl_closed_form().value();
  // The theorem drops terms of relative order ~2N(lambda_N + d lambda_d)
  // / mu_N, which reaches ~11% at the (N=128, d=24) corner; scale the
  // tolerance with that known first dropped term.
  const double dropped = 2.0 * n *
                         (p.node_failure.value() +
                          d * p.drive_failure.value()) /
                         p.node_rebuild.value();
  EXPECT_NEAR(closed, exact, (0.02 + 1.5 * dropped) * exact);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NirSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128),
                       ::testing::Values(4, 12, 24),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace nsrel::models
