// Tests for the observability layer: metrics-registry merge exactness
// (TSan-covered), trace-file validity, the version/--metrics/--progress/
// --cache-stats CLI surface, and the nsrel-bench-v1 writer — plus the
// central invariant that stdout is byte-identical with observability on
// or off, at any jobs count.
#include <cstddef>
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_common.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "util/thread_pool.hpp"

namespace nsrel {
namespace {

// --- Minimal recursive-descent JSON validator -------------------------
// Syntax-only: enough to prove the trace/bench documents are loadable by
// any real JSON parser (Perfetto included).

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool valid_json(const std::string& text) {
  return JsonValidator(text).valid();
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Enables the registry for the test body, restoring the disabled
/// default afterwards so tests do not leak state into one another.
struct RegistryScope {
  RegistryScope() {
    obs::Registry::instance().reset();
    obs::Registry::instance().set_enabled(true);
  }
  ~RegistryScope() {
    obs::Registry::instance().set_enabled(false);
    obs::Registry::instance().reset();
  }
};

// --- Metrics registry -------------------------------------------------

TEST(ObsRegistry, DisabledByDefaultAndProbesAreNoOps) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  ASSERT_FALSE(obs::Registry::enabled());
  const obs::Counter counter = registry.counter("test.noop");
  registry.add(counter, 17);
  const auto snap = registry.snapshot();
  for (const auto& row : snap.counters) {
    if (row.name == "test.noop") {
      EXPECT_EQ(row.value, 0u);
    }
  }
}

TEST(ObsRegistry, ConcurrentIncrementsMergeExactly) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  const obs::Counter counter = registry.counter("test.merge");
  const obs::Histogram histogram = registry.histogram("test.merge_ns");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, histogram] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.add(counter);
        registry.record(histogram, static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snap = registry.snapshot();
  bool found_counter = false;
  for (const auto& row : snap.counters) {
    if (row.name != "test.merge") continue;
    found_counter = true;
    // Exact: after joining every incrementing thread the merge of live
    // shards plus retired totals loses nothing.
    EXPECT_EQ(row.value, static_cast<std::uint64_t>(kThreads) * kIncrements);
  }
  ASSERT_TRUE(found_counter);
  for (const auto& row : snap.histograms) {
    if (row.name != "test.merge_ns") continue;
    EXPECT_EQ(row.count, static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_EQ(row.min, 0u);
    EXPECT_EQ(row.max, static_cast<std::uint64_t>(kIncrements - 1));
  }
}

TEST(ObsRegistry, HistogramSummaryStatistics) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  const obs::Histogram histogram = registry.histogram("test.hist");
  for (const std::uint64_t v : {1u, 2u, 4u, 8u, 1000u}) {
    registry.record(histogram, v);
  }
  const auto snap = registry.snapshot();
  for (const auto& row : snap.histograms) {
    if (row.name != "test.hist") continue;
    EXPECT_EQ(row.count, 5u);
    EXPECT_EQ(row.sum, 1015u);
    EXPECT_EQ(row.min, 1u);
    EXPECT_EQ(row.max, 1000u);
    EXPECT_DOUBLE_EQ(row.mean(), 203.0);
    // Quantile bounds are log2 bucket upper bounds (nearest-rank): the
    // median of {1,2,4,8,1000} is 4 (bound 7); the top quantile lands
    // in the bucket holding 1000 (2^10 - 1 = 1023).
    EXPECT_EQ(row.quantile_bound(0.50), 7u);
    EXPECT_EQ(row.quantile_bound(1.0), 1023u);
  }
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  auto& registry = obs::Registry::instance();
  const obs::Counter a = registry.counter("test.same");
  const obs::Counter b = registry.counter("test.same");
  EXPECT_EQ(a.slot, b.slot);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsHandles) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  const obs::Counter counter = registry.counter("test.reset");
  registry.add(counter, 5);
  registry.reset();
  registry.add(counter, 2);
  const auto snap = registry.snapshot();
  for (const auto& row : snap.counters) {
    if (row.name == "test.reset") {
      EXPECT_EQ(row.value, 2u);
    }
  }
}

TEST(ObsRegistry, MetricsBlockRendersCountersAndHistograms) {
  const RegistryScope scope;
  auto& registry = obs::Registry::instance();
  registry.add(registry.counter("test.block"), 3);
  registry.record(registry.histogram("test.block_ns"), 128);
  std::ostringstream out;
  obs::print_metrics_block(registry.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== nsrel metrics =="), std::string::npos);
  EXPECT_NE(text.find("test.block = 3"), std::string::npos);
  EXPECT_NE(text.find("test.block_ns"), std::string::npos);
  // The histogram line carries bucket-derived percentile bounds.
  EXPECT_NE(text.find("p50<"), std::string::npos);
  EXPECT_NE(text.find("p90<"), std::string::npos);
  EXPECT_NE(text.find("p99<"), std::string::npos);
  EXPECT_NE(text.find("== end metrics =="), std::string::npos);
}

TEST(ObsThreadPool, RecordsSubmitAndCompletionCounts) {
  const RegistryScope scope;
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> done;
    done.reserve(8);
    for (int i = 0; i < 8; ++i) {
      done.push_back(pool.submit([] {}));
    }
    for (auto& f : done) f.get();
  }  // pool joined: worker shards retired, totals exact
  const auto snap = obs::Registry::instance().snapshot();
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  for (const auto& row : snap.counters) {
    if (row.name == "thread_pool.submitted") submitted = row.value;
    if (row.name == "thread_pool.completed") completed = row.value;
  }
  EXPECT_EQ(submitted, 8u);
  EXPECT_EQ(completed, 8u);
}

// --- Trace recorder ---------------------------------------------------

TEST(ObsTrace, SpansProduceValidTraceEventJson) {
  obs::TraceRecorder::instance().begin();
  {
    obs::Span span("unit_test", "test");
    span.arg("label", "value with \"quotes\"");
    span.arg("index", std::uint64_t{7});
  }
  { const obs::Span inner("nested", "test"); }
  obs::TraceRecorder::instance().disable();

  std::ostringstream out;
  obs::TraceRecorder::instance().write(out);
  const std::string text = out.str();
  obs::TraceRecorder::instance().clear();

  EXPECT_TRUE(valid_json(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\": "), std::string::npos);
  EXPECT_NE(text.find("\"dur\": "), std::string::npos);
  EXPECT_NE(text.find("\"pid\": "), std::string::npos);
  EXPECT_NE(text.find("\"tid\": "), std::string::npos);
  EXPECT_NE(text.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(text.find("\"index\": 7"), std::string::npos);
  // Build identity travels with every trace.
  EXPECT_NE(text.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(text.find(obs::build_info().semver), std::string::npos);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::TraceRecorder::instance().clear();
  ASSERT_FALSE(obs::TraceRecorder::enabled());
  { const obs::Span span("should_not_appear", "test"); }
  std::ostringstream out;
  obs::TraceRecorder::instance().write(out);
  EXPECT_EQ(out.str().find("should_not_appear"), std::string::npos);
  EXPECT_TRUE(valid_json(out.str()));
}

// --- Build info / version ---------------------------------------------

TEST(ObsBuildInfo, VersionLineCarriesSemverAndCompiler) {
  const std::string line = obs::version_line();
  EXPECT_NE(line.find("nsrel "), std::string::npos);
  EXPECT_NE(line.find(obs::build_info().semver), std::string::npos);
  EXPECT_NE(line.find(obs::build_info().build_type), std::string::npos);
}

// --- CLI surface ------------------------------------------------------

struct CliResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::initializer_list<const char*> tokens) {
  const cli::Args args(
      std::vector<std::string>(tokens.begin(), tokens.end()));
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::dispatch(args, out, err);
  return {rc, out.str(), err.str()};
}

TEST(ObsCli, VersionCommandExitsZero) {
  const CliResult result = run_cli({"version"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("nsrel "), std::string::npos);
  EXPECT_NE(result.out.find("git SHA"), std::string::npos);
  EXPECT_NE(result.out.find("compiler"), std::string::npos);
  EXPECT_NE(result.out.find("build type"), std::string::npos);
}

TEST(ObsCli, VersionFlagWinsAnywhere) {
  const CliResult result = run_cli({"sweep", "--steps", "3", "--version"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("nsrel "), std::string::npos);
  EXPECT_EQ(result.out.find("sweeping"), std::string::npos);
}

TEST(ObsCli, SweepStdoutByteIdenticalWithObservabilityOnAtAnyJobs) {
  const CliResult plain = run_cli({"sweep", "--steps", "4"});
  ASSERT_EQ(plain.exit_code, 0);
  ASSERT_FALSE(plain.out.empty());

  const std::string trace1 = temp_path("obs_sweep_j1.json");
  const std::string trace8 = temp_path("obs_sweep_j8.json");
  const CliResult traced1 = run_cli({"sweep", "--steps", "4", "--jobs", "1",
                                     "--trace", trace1.c_str(), "--metrics"});
  const CliResult traced8 = run_cli({"sweep", "--steps", "4", "--jobs", "8",
                                     "--trace", trace8.c_str(), "--metrics"});
  EXPECT_EQ(traced1.exit_code, 0);
  EXPECT_EQ(traced8.exit_code, 0);
  // The tentpole invariant: tracing/metrics on or off, jobs 1 or 8 —
  // stdout is the same bytes.
  EXPECT_EQ(plain.out, traced1.out);
  EXPECT_EQ(plain.out, traced8.out);
  // The metrics block goes to stderr only.
  EXPECT_NE(traced1.err.find("== nsrel metrics =="), std::string::npos);
  EXPECT_NE(traced1.err.find("solve_cache.misses"), std::string::npos);
  EXPECT_EQ(plain.err.find("metrics"), std::string::npos);

  // Both trace files are valid JSON with one span per cell.
  for (const std::string& path : {trace1, trace8}) {
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << path;
    EXPECT_TRUE(valid_json(text)) << path;
    EXPECT_GE(count_occurrences(text, "\"name\": \"cell\""), 4u) << path;
    EXPECT_GE(count_occurrences(text, "\"name\": \"evaluate\""), 1u) << path;
    EXPECT_GE(count_occurrences(text, "\"name\": \"solve\""), 1u) << path;
    EXPECT_NE(text.find("\"outcome\": \"ok\""), std::string::npos) << path;
  }
}

TEST(ObsCli, MetricsAndTraceLeaveExitCodeAlone) {
  // A failing command still writes observability output and keeps its
  // own exit code (usage error 4 for the unknown flag).
  const std::string trace = temp_path("obs_fail.json");
  const CliResult result = run_cli(
      {"sweep", "--bogus-flag", "1", "--trace", trace.c_str(), "--metrics"});
  EXPECT_EQ(result.exit_code, cli::kExitUsage);
  EXPECT_NE(result.err.find("== nsrel metrics =="), std::string::npos);
  EXPECT_TRUE(valid_json(slurp(trace)));
}

TEST(ObsCli, ProgressWritesToStderrOnly) {
  const CliResult plain = run_cli({"sweep", "--steps", "3"});
  const CliResult progress = run_cli({"sweep", "--steps", "3", "--progress"});
  EXPECT_EQ(progress.exit_code, 0);
  EXPECT_EQ(plain.out, progress.out);
  // The final line always reports completion.
  EXPECT_NE(progress.err.find("cells: 3/3"), std::string::npos);
}

TEST(ObsCli, SimulateProgressAndDeterminismAcrossJobs) {
  const auto base = {"simulate", "--trials", "128",   "--chunk", "16",
                     "--node-mttf", "500", "--drive-mttf", "400"};
  const CliResult plain = run_cli(base);
  ASSERT_EQ(plain.exit_code, 0);
  const std::string trace = temp_path("obs_sim.json");
  const CliResult observed = run_cli(
      {"simulate", "--trials", "128", "--chunk", "16", "--node-mttf", "500",
       "--drive-mttf", "400", "--progress", "--metrics", "--trace",
       trace.c_str()});
  EXPECT_EQ(observed.exit_code, 0);
  EXPECT_EQ(plain.out, observed.out);
  EXPECT_NE(observed.err.find("chunks: 8/8"), std::string::npos);
  const std::string text = slurp(trace);
  EXPECT_TRUE(valid_json(text));
  EXPECT_EQ(count_occurrences(text, "\"name\": \"chunk\""), 8u);
  EXPECT_NE(text.find("\"stream\": "), std::string::npos);
}

TEST(ObsCli, CacheStatsFooterIsOptIn) {
  const CliResult plain = run_cli({"sweep", "--steps", "3"});
  EXPECT_EQ(plain.out.find("cache:"), std::string::npos);
  const CliResult footer = run_cli({"sweep", "--steps", "3", "--cache-stats"});
  EXPECT_EQ(footer.exit_code, 0);
  EXPECT_NE(footer.out.find("cache: 0 hits, 3 misses (3 lookups)"),
            std::string::npos);
}

TEST(ObsCli, CacheStatsJsonMetaIsOptIn) {
  const CliResult plain =
      run_cli({"compare", "--format", "json"});
  EXPECT_EQ(plain.out.find("\"meta\""), std::string::npos);
  const CliResult meta =
      run_cli({"compare", "--format", "json", "--cache-stats"});
  EXPECT_EQ(meta.exit_code, 0);
  EXPECT_TRUE(valid_json(meta.out));
  EXPECT_NE(meta.out.find("\"meta\""), std::string::npos);
  EXPECT_NE(meta.out.find("\"cache\""), std::string::npos);
  EXPECT_NE(meta.out.find("\"lookups\""), std::string::npos);
  // The rest of the document is unchanged: strip the meta object and
  // the schema/method prefix stays identical.
  EXPECT_NE(plain.out.find("\"schema\": \"nsrel-resultset-v3\""),
            std::string::npos);
  EXPECT_NE(meta.out.find("\"schema\": \"nsrel-resultset-v3\""),
            std::string::npos);
}

TEST(ObsScenario, TraceKeyWritesTraceFile) {
  const std::string trace = temp_path("obs_scenario.json");
  const std::string text = "[system]\nn = 16\n\n[output]\nformat = csv\n"
                           "trace = " +
                           trace + "\n";
  std::ostringstream out;
  const scenario::RunOutcome outcome =
      scenario::run_scenario_text(text, out);
  EXPECT_TRUE(outcome.all_ok());
  const std::string trace_text = slurp(trace);
  ASSERT_FALSE(trace_text.empty());
  EXPECT_TRUE(valid_json(trace_text));
  EXPECT_GE(count_occurrences(trace_text, "\"name\": \"cell\""), 3u);
}

TEST(ObsScenario, ScenarioOutputUnchangedByTraceKey) {
  const std::string base = "[system]\nn = 16\n\n[output]\nformat = csv\n";
  const std::string trace = temp_path("obs_scenario2.json");
  std::ostringstream plain_out;
  std::ostringstream traced_out;
  (void)scenario::run_scenario_text(base, plain_out);
  (void)scenario::run_scenario_text(base + "trace = " + trace + "\n",
                                    traced_out);
  EXPECT_EQ(plain_out.str(), traced_out.str());
}

// --- Bench JSON -------------------------------------------------------

TEST(ObsBenchJson, WritesValidStableSchema) {
  std::vector<bench::BenchEntry> entries;
  bench::BenchEntry timed;
  timed.name = "sweep:x";
  timed.iterations = 3;
  timed.real_ns = 1.5e6;
  timed.cpu_ns = 1.25e6;
  timed.counters.emplace_back("cells", 27.0);
  entries.push_back(timed);
  bench::BenchEntry wall_only;
  wall_only.name = "total";
  wall_only.real_ns = 2.0e9;  // cpu_ns stays < 0 → null
  entries.push_back(wall_only);

  std::ostringstream out;
  bench::write_bench_json(out, "unit_test_bench", entries);
  const std::string text = out.str();
  EXPECT_TRUE(valid_json(text)) << text;
  EXPECT_NE(text.find("\"schema\": \"nsrel-bench-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"binary\": \"unit_test_bench\""), std::string::npos);
  EXPECT_NE(text.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"sweep:x\""), std::string::npos);
  EXPECT_NE(text.find("\"cells\": 27"), std::string::npos);
  EXPECT_NE(text.find("\"cpu_ns\": null"), std::string::npos);
}

}  // namespace
}  // namespace nsrel
