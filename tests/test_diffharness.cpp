// Differential-testing harness for the CTMC solver backends (the
// headline deliverable of the sparse-solver work, DESIGN.md §11).
//
// Three claims are proven here, each across hundreds of seeded random
// chains:
//   1. The dense and sparse GTH elimination backends are BIT-IDENTICAL
//      (0 ULP) on every chain family the solvers accept.
//   2. The dense and sparse LU backends (different pivoting, so exact
//      equality is not expected) agree to the stated bound: relative
//      error <= 1e-9 on every reported quantity.
//   3. Degenerate systems (trapped states, reducible chains, forced
//      dense above the cap) fail with IDENTICAL typed errors — same
//      ErrorCode, same detail — on both backends.
// Plus the end-to-end form of claim 1: nsrel's stdout is byte-identical
// under --solver dense/sparse/auto and --jobs 1/8.
#include <cstdint>
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "ctmc/absorbing.hpp"
#include "ctmc/elimination.hpp"
#include "ctmc/solver_policy.hpp"
#include "ctmc/stationary.hpp"
#include "diffharness/chain_generator.hpp"
#include "diffharness/diff_runner.hpp"
#include "models/no_internal_raid.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nsrel {
namespace {

using ctmc::SolverPolicy;
using diffharness::DiffStats;

/// The stated agreement bound for the LU backends (DESIGN.md §11): the
/// two factorizations pivot differently, so they agree only to rounding
/// — observed worst cases are ~1e-12; 1e-9 leaves margin without hiding
/// a real divergence.
constexpr double kLuRelativeBound = 1e-9;

/// Solves one chain under both elimination backends and asserts the
/// results are bit-identical (both values, or both the same error).
void expect_gth_bit_identical(const ctmc::Chain& chain, ctmc::StateId initial,
                              DiffStats& stats, const std::string& what) {
  const Expected<double> dense =
      ctmc::EliminationSolver::try_mean_absorption_time_hours(
          chain, initial, SolverPolicy::kDense);
  const Expected<double> sparse =
      ctmc::EliminationSolver::try_mean_absorption_time_hours(
          chain, initial, SolverPolicy::kSparse);
  ASSERT_EQ(dense.has_value(), sparse.has_value()) << what;
  if (dense.has_value()) {
    EXPECT_TRUE(diffharness::bit_equal(dense.value(), sparse.value()))
        << what << ": dense=" << dense.value() << " sparse=" << sparse.value()
        << " ulp=" << diffharness::ulp_distance(dense.value(), sparse.value());
    stats.record(dense.value(), sparse.value());
  } else {
    EXPECT_EQ(dense.error().code, sparse.error().code) << what;
    EXPECT_EQ(dense.error().detail, sparse.error().detail) << what;
  }
  stats.note_chain();
  if (obs::Registry::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.add(registry.counter(obs::probe::kDiffHarnessChains));
  }
}

// --- claim 1: GTH backends are bit-identical --------------------------

TEST(DiffHarness, GthBitIdenticalAcrossThreeHundredChains) {
  DiffStats stats;

  // Birth-death chains (the internal-RAID shape), 2..41 degraded states.
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    Xoshiro256 rng(stream_seed(0xD1FF, seed));
    const std::size_t transient = 2 + rng.below(40);
    const ctmc::Chain chain = diffharness::birth_death(rng, transient);
    expect_gth_bit_identical(chain, 0, stats,
                             "birth_death seed " + std::to_string(seed));
  }

  // Arbitrary absorbing chains with random extra edges.
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    Xoshiro256 rng(stream_seed(0xD2FF, seed));
    const std::size_t transient = 2 + rng.below(30);
    const std::size_t absorbing = 1 + rng.below(3);
    const ctmc::Chain chain =
        diffharness::random_absorbing(rng, transient, absorbing, 0.15);
    expect_gth_bit_identical(chain, 0, stats,
                             "random_absorbing seed " + std::to_string(seed));
  }

  // The appendix recursion's binary-tree chains, k = 1..6.
  for (int k = 1; k <= 6; ++k) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Xoshiro256 rng(stream_seed(0xD3FF + static_cast<std::uint64_t>(k), seed));
      const models::NoInternalRaidModel model(
          diffharness::random_recursive_params(rng, k));
      const double dense =
          model.mttdl_recursive_matrix(SolverPolicy::kDense).value();
      const double sparse =
          model.mttdl_recursive_matrix(SolverPolicy::kSparse).value();
      EXPECT_TRUE(diffharness::bit_equal(dense, sparse))
          << "recursive k=" << k << " seed=" << seed << ": dense=" << dense
          << " sparse=" << sparse;
      stats.record(dense, sparse);
      stats.note_chain();
    }
  }

  EXPECT_GE(stats.chains, 300u);
  EXPECT_EQ(stats.max_ulp, 0u);  // the headline: 0 ULP across the sweep
  RecordProperty("chains", static_cast<int>(stats.chains));
}

TEST(DiffHarness, GthBitIdenticalOnLabeledRecursiveChains) {
  // The labeled chain() path (distinct assembly code from the recursive
  // matrix) must also be bit-identical between backends.
  DiffStats stats;
  for (int k = 1; k <= 4; ++k) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Xoshiro256 rng(stream_seed(0xD4FF + static_cast<std::uint64_t>(k), seed));
      const models::NoInternalRaidModel model(
          diffharness::random_recursive_params(rng, k));
      expect_gth_bit_identical(
          model.chain(), models::NoInternalRaidModel::root_state(), stats,
          "labeled recursive k=" + std::to_string(k) + " seed " +
              std::to_string(seed));
    }
  }
  EXPECT_EQ(stats.max_ulp, 0u);
}

TEST(DiffHarness, RecursiveSparseAssemblyMatchesDenseEntryForEntry) {
  for (int k = 1; k <= 6; ++k) {
    Xoshiro256 rng(stream_seed(0xD5FF, static_cast<std::uint64_t>(k)));
    const models::NoInternalRaidModel model(
        diffharness::random_recursive_params(rng, k));
    const linalg::Matrix dense = model.absorption_matrix_recursive();
    const linalg::Matrix roundtrip =
        model.absorption_matrix_recursive_sparse().to_dense();
    ASSERT_EQ(roundtrip.rows(), dense.rows());
    for (std::size_t i = 0; i < dense.rows(); ++i) {
      for (std::size_t j = 0; j < dense.cols(); ++j) {
        ASSERT_TRUE(diffharness::bit_equal(dense(i, j), roundtrip(i, j)))
            << "k=" << k << " entry (" << i << ", " << j << ")";
      }
    }
  }
}

// --- claim 2: LU backends agree to the stated bound -------------------

TEST(DiffHarness, AbsorbingLuBackendsAgreeToStatedBound) {
  DiffStats stats;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Xoshiro256 rng(stream_seed(0xAB50, seed));
    const std::size_t transient = 2 + rng.below(25);
    const std::size_t absorbing = 1 + rng.below(3);
    const ctmc::Chain chain =
        diffharness::random_absorbing(rng, transient, absorbing, 0.2);
    const auto dense = ctmc::AbsorbingSolver::try_analyze(
        chain, 0, {}, SolverPolicy::kDense);
    const auto sparse = ctmc::AbsorbingSolver::try_analyze(
        chain, 0, {}, SolverPolicy::kSparse);
    ASSERT_EQ(dense.has_value(), sparse.has_value()) << "seed " << seed;
    if (!dense.has_value()) {
      EXPECT_EQ(dense.error().code, sparse.error().code) << "seed " << seed;
      continue;
    }
    const auto& d = dense.value();
    const auto& s = sparse.value();
    EXPECT_LE(diffharness::rel_diff(d.mean_time_to_absorption_hours,
                                    s.mean_time_to_absorption_hours),
              kLuRelativeBound)
        << "seed " << seed;
    EXPECT_LE(diffharness::rel_diff(d.stddev_time_to_absorption_hours,
                                    s.stddev_time_to_absorption_hours),
              kLuRelativeBound)
        << "seed " << seed;
    for (std::size_t i = 0; i < d.occupancy_hours.size(); ++i) {
      EXPECT_LE(
          diffharness::rel_diff(d.occupancy_hours[i], s.occupancy_hours[i]),
          kLuRelativeBound)
          << "seed " << seed << " occupancy " << i;
    }
    for (std::size_t i = 0; i < d.absorption_probability.size(); ++i) {
      EXPECT_LE(diffharness::rel_diff(d.absorption_probability[i],
                                      s.absorption_probability[i]),
                kLuRelativeBound)
          << "seed " << seed << " absorption " << i;
    }
    stats.record(d.mean_time_to_absorption_hours,
                 s.mean_time_to_absorption_hours);
    stats.record(d.occupancy_hours, s.occupancy_hours);
    stats.record(d.absorption_probability, s.absorption_probability);
    stats.note_chain();
  }
  EXPECT_GE(stats.chains, 50u);
  RecordProperty("max_rel", std::to_string(stats.max_rel));
}

TEST(DiffHarness, StationaryLuBackendsAgreeToStatedBound) {
  DiffStats stats;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Xoshiro256 rng(stream_seed(0x57A7, seed));
    const std::size_t n = 2 + rng.below(30);
    const ctmc::Chain chain = diffharness::random_irreducible(rng, n, 0.2);
    const auto dense =
        ctmc::StationarySolver::try_distribution(chain, SolverPolicy::kDense);
    const auto sparse =
        ctmc::StationarySolver::try_distribution(chain, SolverPolicy::kSparse);
    ASSERT_EQ(dense.has_value(), sparse.has_value()) << "seed " << seed;
    if (!dense.has_value()) {
      EXPECT_EQ(dense.error().code, sparse.error().code) << "seed " << seed;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(
          diffharness::rel_diff(dense.value()[i], sparse.value()[i]),
          kLuRelativeBound)
          << "seed " << seed << " state " << i;
    }
    stats.record(dense.value(), sparse.value());
    stats.note_chain();
  }
  EXPECT_GE(stats.chains, 50u);
  RecordProperty("max_rel", std::to_string(stats.max_rel));
}

// --- claim 3: degenerate systems fail identically ---------------------

TEST(DiffHarness, TrappedStatesFailIdenticallyOnBothBackends) {
  // Three healthy states feeding a three-state trap with no absorption
  // path: elimination must reach an exactly-zero pivot on both backends.
  const auto system = diffharness::trapped_system(3, 3);
  Error dense_error{};
  try {
    (void)ctmc::EliminationSolver::mean_absorption_time_hours(
        system.dense, system.absorption_rates, 0);
    FAIL() << "dense elimination accepted a trapped system";
  } catch (const ErrorException& e) {
    dense_error = e.error();
  }
  const auto sparse = ctmc::EliminationSolver::try_mean_absorption_time_hours(
      system.sparse, system.absorption_rates, 0);
  ASSERT_FALSE(sparse.has_value());
  EXPECT_EQ(dense_error.code, ErrorCode::kSingularGenerator);
  EXPECT_EQ(sparse.error().code, dense_error.code);
  EXPECT_EQ(sparse.error().detail, dense_error.detail);
  EXPECT_EQ(sparse.error().layer, dense_error.layer);
}

TEST(DiffHarness, TrappedInitialStateFailsIdenticallyOnBothBackends) {
  // The trap contains the initial state itself: the failure surfaces at
  // the final step as a vanished initial absorption probability.
  const auto system = diffharness::trapped_system(0, 2);
  Error dense_error{};
  try {
    (void)ctmc::EliminationSolver::mean_absorption_time_hours(
        system.dense, system.absorption_rates, 0);
    FAIL() << "dense elimination accepted a trapped initial state";
  } catch (const ErrorException& e) {
    dense_error = e.error();
  }
  const auto sparse = ctmc::EliminationSolver::try_mean_absorption_time_hours(
      system.sparse, system.absorption_rates, 0);
  ASSERT_FALSE(sparse.has_value());
  EXPECT_EQ(dense_error.code, ErrorCode::kSingularGenerator);
  EXPECT_EQ(sparse.error().code, dense_error.code);
  EXPECT_EQ(sparse.error().detail, dense_error.detail);
}

TEST(DiffHarness, ReducibleStationaryChainFailsIdenticallyOnBothBackends) {
  const ctmc::Chain chain = diffharness::disconnected_cycles();
  const auto dense =
      ctmc::StationarySolver::try_distribution(chain, SolverPolicy::kDense);
  const auto sparse =
      ctmc::StationarySolver::try_distribution(chain, SolverPolicy::kSparse);
  ASSERT_FALSE(dense.has_value());
  ASSERT_FALSE(sparse.has_value());
  EXPECT_EQ(dense.error().code, ErrorCode::kSingularGenerator);
  EXPECT_EQ(sparse.error().code, dense.error().code);
  EXPECT_EQ(sparse.error().detail, dense.error().detail);
}

TEST(DiffHarness, ForcedDenseAboveCapIsRefusedWithTypedError) {
  // 4097 transient states: one above the dense cap. kAuto and kSparse
  // must solve it; forced kDense must refuse with kInvalidParameter
  // (and must refuse BEFORE allocating the 4097^2 dense array).
  Xoshiro256 rng(0xCAFE);
  const ctmc::Chain chain = diffharness::birth_death(rng, 4097);
  const auto forced = ctmc::EliminationSolver::try_mean_absorption_time_hours(
      chain, 0, SolverPolicy::kDense);
  ASSERT_FALSE(forced.has_value());
  EXPECT_EQ(forced.error().code, ErrorCode::kInvalidParameter);
  const auto sparse = ctmc::EliminationSolver::try_mean_absorption_time_hours(
      chain, 0, SolverPolicy::kSparse);
  const auto automatic =
      ctmc::EliminationSolver::try_mean_absorption_time_hours(
          chain, 0, SolverPolicy::kAuto);
  ASSERT_TRUE(sparse.has_value()) << sparse.error().detail;
  ASSERT_TRUE(automatic.has_value());
  EXPECT_TRUE(diffharness::bit_equal(sparse.value(), automatic.value()));
}

// --- end-to-end: CLI output is byte-identical across policies ---------

struct CliResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::initializer_list<const char*> tokens) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::dispatch(
      cli::Args(std::vector<std::string>(tokens.begin(), tokens.end())), out,
      err);
  return {code, out.str(), err.str()};
}

TEST(DiffHarness, CliAnalyzeByteIdenticalAcrossSolvers) {
  // ft=8 without internal RAID is a 511-state chain — above the auto
  // threshold, so "auto" really runs sparse here.
  const auto dense = run_cli({"analyze", "--scheme", "none", "--ft", "8",
                              "--r", "16", "--solver", "dense"});
  const auto sparse = run_cli({"analyze", "--scheme", "none", "--ft", "8",
                               "--r", "16", "--solver", "sparse"});
  const auto automatic = run_cli({"analyze", "--scheme", "none", "--ft", "8",
                                  "--r", "16", "--solver", "auto"});
  ASSERT_EQ(dense.exit_code, 0) << dense.err;
  ASSERT_EQ(sparse.exit_code, 0) << sparse.err;
  ASSERT_EQ(automatic.exit_code, 0) << automatic.err;
  EXPECT_EQ(dense.out, sparse.out);
  EXPECT_EQ(sparse.out, automatic.out);
}

TEST(DiffHarness, CliSweepByteIdenticalAcrossJobsAndSolvers) {
  const auto reference =
      run_cli({"sweep", "--param", "drive-mttf", "--from", "1e5", "--to",
               "7.5e5", "--steps", "4", "--jobs", "1", "--solver", "dense"});
  ASSERT_EQ(reference.exit_code, 0) << reference.err;
  for (const char* solver : {"dense", "sparse", "auto"}) {
    for (const char* jobs : {"1", "8"}) {
      const auto run =
          run_cli({"sweep", "--param", "drive-mttf", "--from", "1e5", "--to",
                   "7.5e5", "--steps", "4", "--jobs", jobs, "--solver",
                   solver});
      ASSERT_EQ(run.exit_code, 0) << run.err;
      EXPECT_EQ(run.out, reference.out)
          << "solver=" << solver << " jobs=" << jobs;
    }
  }
}

TEST(DiffHarness, CliRejectsUnknownSolver) {
  const auto result = run_cli({"analyze", "--solver", "cholesky"});
  EXPECT_EQ(result.exit_code, cli::kExitUsage);
  EXPECT_NE(result.err.find("unknown solver policy"), std::string::npos);
}

}  // namespace
}  // namespace nsrel
