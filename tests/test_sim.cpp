// Statistical validation: Monte-Carlo simulators vs the analytic solvers.
// Simulations run at accelerated failure rates (see storage_simulator.hpp)
// so each trajectory has a manageable number of events; agreement there
// validates the transition structure at any rate ratio.

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

#include "ctmc/absorbing.hpp"
#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "sim/chain_simulator.hpp"
#include "sim/estimate.hpp"
#include "sim/storage_simulator.hpp"
#include "util/assert.hpp"

namespace nsrel::sim {
namespace {

// Accelerated parameters: lambda/mu ~ 1e-2, so trajectories absorb after
// ~1e2-1e4 events and 4000 trials finish in well under a second.
models::NoInternalRaidParams accelerated_nir(int fault_tolerance) {
  models::NoInternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = fault_tolerance;
  p.drives_per_node = 3;
  p.node_failure = PerHour(0.002);
  p.drive_failure = PerHour(0.003);
  p.node_rebuild = PerHour(1.0);
  p.drive_rebuild = PerHour(3.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

models::InternalRaidParams accelerated_ir(int fault_tolerance) {
  models::InternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = fault_tolerance;
  p.node_failure = PerHour(0.004);
  p.node_rebuild = PerHour(1.0);
  p.array_failure = PerHour(0.001);
  p.sector_error = PerHour(0.0005);
  return p;
}

TEST(Estimate, MomentsAndInterval) {
  // Two observations 1 and 3: mean 2, sample stddev sqrt(2).
  const MttdlEstimate e = make_estimate(4.0, 10.0, 2);
  EXPECT_DOUBLE_EQ(e.mean_hours, 2.0);
  EXPECT_NEAR(e.stddev_hours, std::sqrt(2.0), 1e-12);
  EXPECT_TRUE(e.covers(2.0));
  EXPECT_FALSE(e.covers(100.0));
  EXPECT_THROW((void)make_estimate(1.0, 1.0, 1), ContractViolation);
}

TEST(ChainSimulator, SingleExponentialMatchesAnalytic) {
  ctmc::Chain c;
  const auto up = c.add_state("up");
  const auto down = c.add_state("down", ctmc::StateKind::kAbsorbing);
  c.add_transition(up, down, 2.0);
  ChainSimulator simulator(c, 101);
  const MttdlEstimate e = simulator.estimate(20000, up);
  // Analytic MTTA = 0.5; allow 4 sigma.
  EXPECT_NEAR(e.mean_hours, 0.5, 4.0 * e.stderr_hours);
}

TEST(ChainSimulator, RepairableChainMatchesSolver) {
  ctmc::Chain c;
  const auto s0 = c.add_state("ok");
  const auto s1 = c.add_state("deg");
  const auto s2 = c.add_state("loss", ctmc::StateKind::kAbsorbing);
  c.add_transition(s0, s1, 0.2);
  c.add_transition(s1, s0, 1.0);
  c.add_transition(s1, s2, 0.1);
  const double analytic = ctmc::AbsorbingSolver::mttdl_hours(c, s0);
  ChainSimulator simulator(c, 202);
  const MttdlEstimate e = simulator.estimate(8000, s0);
  EXPECT_NEAR(e.mean_hours, analytic, 4.0 * e.stderr_hours);
}

TEST(ChainSimulator, DeterministicForFixedSeed) {
  ctmc::Chain c;
  const auto s0 = c.add_state("ok");
  const auto s1 = c.add_state("loss", ctmc::StateKind::kAbsorbing);
  c.add_transition(s0, s1, 1.0);
  ChainSimulator a(c, 7);
  ChainSimulator b(c, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_absorption_time(s0),
                     b.sample_absorption_time(s0));
  }
}

TEST(ChainSimulator, RejectsAbsorbingStart) {
  ctmc::Chain c;
  c.add_state("ok");
  const auto loss = c.add_state("loss", ctmc::StateKind::kAbsorbing);
  c.add_transition(0, loss, 1.0);
  ChainSimulator simulator(c, 1);
  EXPECT_THROW((void)simulator.sample_absorption_time(loss),
               ContractViolation);
}

class NirSimVsModel : public ::testing::TestWithParam<int> {};

TEST_P(NirSimVsModel, StorageSimulatorMatchesExactChain) {
  const int k = GetParam();
  const auto params = accelerated_nir(k);
  const models::NoInternalRaidModel model(params);
  const double analytic = model.mttdl_exact().value();
  NirStorageSimulator simulator(params, 303 + static_cast<std::uint64_t>(k));
  const MttdlEstimate e = simulator.estimate(4000);
  // 5-sigma band: generous enough for a statistical test that must never
  // flake, tight enough to catch any structural error in the chain.
  EXPECT_NEAR(e.mean_hours, analytic, 5.0 * e.stderr_hours)
      << "k=" << k << " analytic=" << analytic << " sim=" << e.mean_hours;
}

INSTANTIATE_TEST_SUITE_P(FaultTolerances, NirSimVsModel,
                         ::testing::Values(1, 2, 3));

class IrSimVsModel : public ::testing::TestWithParam<int> {};

TEST_P(IrSimVsModel, StorageSimulatorMatchesExactChain) {
  const int t = GetParam();
  const auto params = accelerated_ir(t);
  const models::InternalRaidNodeModel model(params);
  const double analytic = model.mttdl_exact().value();
  IrStorageSimulator simulator(params, 404 + static_cast<std::uint64_t>(t));
  const MttdlEstimate e = simulator.estimate(4000);
  EXPECT_NEAR(e.mean_hours, analytic, 5.0 * e.stderr_hours)
      << "t=" << t << " analytic=" << analytic << " sim=" << e.mean_hours;
}

INSTANTIATE_TEST_SUITE_P(FaultTolerances, IrSimVsModel,
                         ::testing::Values(1, 2, 3));

// Sim-vs-analytic coverage: the analytic MTTDL must lie inside the
// simulator's 95% CI. Tighter than the 5-sigma band above — by
// construction a random seed fails ~5% of the time, but the seeds are
// fixed so these are deterministic regressions on the transition
// structure AND the CI machinery (a CI computed too narrow or too wide
// shows up here, not in the sigma-band tests). Runs through the parallel
// engine at 2 jobs; DeterministicReplay (test_parallel_sim.cpp) pins
// jobs-invariance, so the job count here is incidental.

TEST_P(NirSimVsModel, AnalyticMttdlInsideSimulators95Ci) {
  const int k = GetParam();
  const auto params = accelerated_nir(k);
  const double analytic =
      models::NoInternalRaidModel(params).mttdl_exact().value();
  NirStorageSimulator simulator(params, 909 + static_cast<std::uint64_t>(k));
  ParallelOptions options;
  options.jobs = 2;
  const MttdlEstimate e = simulator.estimate(4000, options);
  EXPECT_TRUE(e.covers(analytic))
      << "k=" << k << " analytic=" << analytic << " CI=["
      << e.ci95_low_hours << ", " << e.ci95_high_hours << "]";
}

TEST_P(IrSimVsModel, AnalyticMttdlInsideSimulators95Ci) {
  const int t = GetParam();
  const auto params = accelerated_ir(t);
  const double analytic =
      models::InternalRaidNodeModel(params).mttdl_exact().value();
  IrStorageSimulator simulator(params, 1010 + static_cast<std::uint64_t>(t));
  ParallelOptions options;
  options.jobs = 2;
  const MttdlEstimate e = simulator.estimate(4000, options);
  EXPECT_TRUE(e.covers(analytic))
      << "t=" << t << " analytic=" << analytic << " CI=["
      << e.ci95_low_hours << ", " << e.ci95_high_hours << "]";
}

TEST(StorageSimulator, ChainSimulatorAgreesWithStorageSimulator) {
  // Close the triangle: storage-level simulation vs chain-level simulation
  // of the recursively built chain vs the solver (covered above).
  const auto params = accelerated_nir(2);
  const models::NoInternalRaidModel model(params);
  const auto chain = model.chain();
  ChainSimulator chain_sim(chain, 505);
  const MttdlEstimate via_chain =
      chain_sim.estimate(4000, models::NoInternalRaidModel::root_state());
  NirStorageSimulator storage_sim(params, 606);
  const MttdlEstimate via_storage = storage_sim.estimate(4000);
  const double combined_stderr = std::sqrt(
      via_chain.stderr_hours * via_chain.stderr_hours +
      via_storage.stderr_hours * via_storage.stderr_hours);
  EXPECT_NEAR(via_chain.mean_hours, via_storage.mean_hours,
              5.0 * combined_stderr);
}

TEST(StorageSimulator, HardErrorsShortenLife) {
  // Crank HER so h_alpha saturates: simulated MTTDL must drop well below
  // the HER-free configuration.
  auto noisy = accelerated_nir(2);
  noisy.her_per_byte = 3e-12;  // h ~ 0.9 at these R, N
  auto clean = accelerated_nir(2);
  clean.her_per_byte = 0.0;
  NirStorageSimulator noisy_sim(noisy, 707);
  NirStorageSimulator clean_sim(clean, 808);
  EXPECT_LT(noisy_sim.estimate(2000).mean_hours,
            0.7 * clean_sim.estimate(2000).mean_hours);
}

}  // namespace
}  // namespace nsrel::sim
