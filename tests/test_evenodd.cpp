// Tests for the EVENODD double-erasure code: parity identities and
// EXHAUSTIVE recovery of every 0-, 1- and 2-column erasure pattern for
// several primes and cell sizes.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "erasure/evenodd.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nsrel::erasure {
namespace {

std::vector<Shard> random_columns(int count, std::size_t size,
                                  Xoshiro256& rng) {
  std::vector<Shard> columns(static_cast<std::size_t>(count), Shard(size));
  for (auto& column : columns) {
    for (auto& byte : column) byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return columns;
}

TEST(EvenOdd, PrimalityHelper) {
  EXPECT_TRUE(is_small_prime(2));
  EXPECT_TRUE(is_small_prime(3));
  EXPECT_TRUE(is_small_prime(17));
  EXPECT_FALSE(is_small_prime(1));
  EXPECT_FALSE(is_small_prime(9));
  EXPECT_FALSE(is_small_prime(15));
}

TEST(EvenOdd, ConstructorRequiresPrime) {
  EXPECT_NO_THROW(EvenOddCode(5));
  EXPECT_THROW(EvenOddCode(4), ContractViolation);
  EXPECT_THROW(EvenOddCode(9), ContractViolation);
  EXPECT_THROW(EvenOddCode(2), ContractViolation);
}

TEST(EvenOdd, RowParityIsXorOfDataRows) {
  Xoshiro256 rng(21);
  const EvenOddCode code(5);
  const std::size_t cell = 8;
  const auto data = random_columns(5, 4 * cell, rng);
  const auto parity = code.encode(data);
  ASSERT_EQ(parity.size(), 2u);
  // Row parity: P[i] = XOR_j data[j][i].
  for (std::size_t i = 0; i < 4 * cell; ++i) {
    std::uint8_t expected = 0;
    for (const auto& column : data) expected ^= column[i];
    EXPECT_EQ(parity[0][i], expected) << i;
  }
}

TEST(EvenOdd, DiagonalParityDefinition) {
  // Check Q against a direct evaluation of the definition with 1-byte
  // cells: Q[d] = S ^ XOR of cells on diagonal (i+j) mod p == d.
  Xoshiro256 rng(22);
  const int p = 5;
  const EvenOddCode code(p);
  const auto data = random_columns(p, static_cast<std::size_t>(p - 1), rng);
  const auto parity = code.encode(data);
  std::uint8_t s = 0;
  for (int j = 0; j < p; ++j) {
    for (int i = 0; i < p - 1; ++i) {
      if ((i + j) % p == p - 1) {
        s ^= data[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      }
    }
  }
  for (int d = 0; d < p - 1; ++d) {
    std::uint8_t expected = s;
    for (int j = 0; j < p; ++j) {
      for (int i = 0; i < p - 1; ++i) {
        if ((i + j) % p == d) {
          expected ^=
              data[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
        }
      }
    }
    EXPECT_EQ(parity[1][static_cast<std::size_t>(d)], expected) << "d=" << d;
  }
}

class EvenOddExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(EvenOddExhaustive, EverySingleAndDoubleErasureRecovers) {
  const int p = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(p));
  const EvenOddCode code(p);
  const std::size_t cell = 4;
  const auto data =
      random_columns(p, static_cast<std::size_t>(p - 1) * cell, rng);
  auto columns = data;
  auto parity = code.encode(data);
  columns.insert(columns.end(), parity.begin(), parity.end());
  const int total = p + 2;

  const auto check_pattern = [&](const std::vector<int>& erased) {
    std::vector<bool> present(static_cast<std::size_t>(total), true);
    auto damaged = columns;
    for (const int e : erased) {
      present[static_cast<std::size_t>(e)] = false;
      damaged[static_cast<std::size_t>(e)].assign(
          static_cast<std::size_t>(p - 1) * cell, 0xAB);
    }
    ASSERT_TRUE(code.recoverable(present));
    const auto rebuilt = code.reconstruct(damaged, present);
    EXPECT_EQ(rebuilt, columns)
        << "p=" << p << " erased={"
        << (erased.empty() ? -1 : erased[0]) << ","
        << (erased.size() > 1 ? erased[1] : -1) << "}";
  };

  check_pattern({});
  for (int a = 0; a < total; ++a) {
    check_pattern({a});
    for (int b = a + 1; b < total; ++b) check_pattern({a, b});
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, EvenOddExhaustive,
                         ::testing::Values(3, 5, 7, 11, 13));

TEST(EvenOdd, ThreeErasuresRejected) {
  const EvenOddCode code(5);
  std::vector<bool> present(7, true);
  present[0] = present[1] = present[2] = false;
  EXPECT_FALSE(code.recoverable(present));
  const std::vector<Shard> columns(7, Shard(4 * 4, 0));
  EXPECT_THROW((void)code.reconstruct(columns, present), ContractViolation);
}

TEST(EvenOdd, RejectsMalformedColumns) {
  const EvenOddCode code(5);
  // Column size not divisible by p-1.
  EXPECT_THROW((void)code.encode(std::vector<Shard>(5, Shard(7, 0))),
               ContractViolation);
  // Wrong column count.
  EXPECT_THROW((void)code.encode(std::vector<Shard>(4, Shard(8, 0))),
               ContractViolation);
}

TEST(EvenOdd, LargeCellsAndPrime17) {
  // One big random case with realistic sector-size cells.
  Xoshiro256 rng(99);
  const int p = 17;
  const EvenOddCode code(p);
  const std::size_t cell = 512;
  const auto data =
      random_columns(p, static_cast<std::size_t>(p - 1) * cell, rng);
  auto columns = data;
  auto parity = code.encode(data);
  columns.insert(columns.end(), parity.begin(), parity.end());
  std::vector<bool> present(static_cast<std::size_t>(p + 2), true);
  present[3] = present[11] = false;
  auto damaged = columns;
  damaged[3].assign(damaged[3].size(), 0);
  damaged[11].assign(damaged[11].size(), 0);
  EXPECT_EQ(code.reconstruct(damaged, present), columns);
}

}  // namespace
}  // namespace nsrel::erasure
