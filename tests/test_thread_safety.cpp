// Tests for src/util/sync.hpp (the annotated Mutex/MutexLock/CondVar
// primitives) and for the thread-safety gate itself.
//
// Two layers:
//  - Functional: the wrappers must behave exactly like the std
//    primitives they replace — mutual exclusion, try_lock contention,
//    adopting MutexLock, condvar handoff. These run under any compiler
//    (the sanitizer jobs re-run them under TSan/ASan).
//  - Gate proof: with a clang++ on PATH, the negative-compile fixture
//    pair must behave asymmetrically — ok_locked.cpp compiles under
//    -Wthread-safety -Werror, bad_unlocked.cpp (an unlocked access to
//    a NSREL_GUARDED_BY field) is rejected. Without clang++ the gate
//    tests skip: the analysis is Clang-only, and the CI thread-safety
//    job is the box where absence is an error (THREAD_SAFETY_REQUIRE).
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace {

using nsrel::util::CondVar;
using nsrel::util::Mutex;
using nsrel::util::MutexLock;

TEST(SyncMutex, ProvidesMutualExclusion) {
  Mutex mutex;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 40'000);
}

TEST(SyncMutex, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncMutexLock, AdoptingConstructorReleasesOnDestruction) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  {
    const MutexLock lock(mutex, std::adopt_lock);
  }
  // The adopted lock must have been released by the destructor.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncCondVar, WaitReleasesMutexAndReacquiresOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    const MutexLock lock(mutex);
    while (!ready) cv.wait(mutex);
    observed = true;  // guarded write: wait() re-acquired the mutex
  });
  {
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(SyncCondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      const MutexLock lock(mutex);
      while (!go) cv.wait(mutex);
      ++awake;
    });
  }
  {
    const MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(awake, 3);
}

// ---------------------------------------------------------------------
// Gate proof: shell out to a clang++ exactly the way
// tools/thread_safety.sh does and assert the fixture asymmetry.

struct RunResult {
  int status = -1;
  std::string output;
};

RunResult run(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int raw = ::pclose(pipe);
  result.status = (raw >= 0 && WIFEXITED(raw)) ? WEXITSTATUS(raw) : -1;
  return result;
}

/// First clang++ that answers --version, or "" (mirrors
/// tools/lib/toolchain.sh, including the $CXX override).
std::string find_clangxx() {
  std::vector<std::string> candidates;
  if (const char* cxx = std::getenv("CXX")) candidates.emplace_back(cxx);
  for (const char* name :
       {"clang++", "clang++-19", "clang++-18", "clang++-17", "clang++-16",
        "clang++-15"}) {
    candidates.emplace_back(name);
  }
  for (const auto& candidate : candidates) {
    const RunResult probe = run(candidate + " --version");
    if (probe.status == 0 &&
        probe.output.find("clang") != std::string::npos) {
      return candidate;
    }
  }
  return "";
}

const std::string kSource = NSREL_SOURCE_DIR;
const std::string kFlags =
    " -std=c++20 -I " + kSource + "/src -Wthread-safety"
    " -Wthread-safety-beta -Werror -fsyntax-only ";
const std::string kFixtures = kSource + "/tests/thread_safety_fixtures";

#define SKIP_WITHOUT_CLANG(compiler) \
  if ((compiler).empty()) GTEST_SKIP() << "no clang++ on PATH"

TEST(ThreadSafetyGate, LockedFixtureCompiles) {
  const std::string clangxx = find_clangxx();
  SKIP_WITHOUT_CLANG(clangxx);
  const RunResult result =
      run(clangxx + kFlags + kFixtures + "/ok_locked.cpp");
  EXPECT_EQ(result.status, 0) << result.output;
}

TEST(ThreadSafetyGate, UnlockedGuardedAccessFailsToCompile) {
  const std::string clangxx = find_clangxx();
  SKIP_WITHOUT_CLANG(clangxx);
  const RunResult result =
      run(clangxx + kFlags + kFixtures + "/bad_unlocked.cpp");
  EXPECT_NE(result.status, 0)
      << "bad_unlocked.cpp compiled — the gate does not fire";
  EXPECT_NE(result.output.find("-Wthread-safety"), std::string::npos)
      << result.output;
}

TEST(ThreadSafetyGate, AnnotatedHeadersCompileUnderAnalysis) {
  const std::string clangxx = find_clangxx();
  SKIP_WITHOUT_CLANG(clangxx);
  // The annotated production headers themselves must be clean under the
  // analysis — the wrapper plus every migrated mutex owner's header.
  for (const char* header :
       {"util/sync.hpp", "util/thread_pool.hpp", "core/solve_cache.hpp",
        "obs/metrics.hpp", "obs/journal.hpp", "obs/trace.hpp",
        "obs/progress.hpp"}) {
    const RunResult result = run(clangxx + kFlags + " -x c++ " + kSource +
                                 "/src/" + header);
    EXPECT_EQ(result.status, 0) << header << ":\n" << result.output;
  }
}

}  // namespace
