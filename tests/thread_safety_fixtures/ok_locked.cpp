// MUST COMPILE under clang++ -Wthread-safety -Werror: every access to
// the guarded field happens with the mutex held via the annotated
// RAII wrapper. The positive half of the negative-compile proof — it
// shows the gate rejects bad_unlocked.cpp for the *guarded* access,
// not for some unrelated breakage in the fixture surface.
#include "guarded.hpp"

int main() {
  nsrel::testing::GuardedCounter counter;
  counter.increment();
  return static_cast<int>(counter.read_locked());
}
