// Negative-compile fixture surface: a counter whose value_ is guarded
// by its mutex. bad_unlocked.cpp touches value_ without the lock and
// must FAIL to compile under `clang++ -Wthread-safety -Werror`;
// ok_locked.cpp takes the lock and must compile. tools/thread_safety.sh
// compiles both to prove the gate actually fires (a gate that passes
// everything proves nothing).
#pragma once

#include "util/sync.hpp"

namespace nsrel::testing {

class GuardedCounter {
 public:
  void increment() {
    const util::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] long read_locked() {
    const util::MutexLock lock(mutex_);
    return value_;
  }

 protected:
  util::Mutex mutex_;
  long value_ NSREL_GUARDED_BY(mutex_) = 0;
};

}  // namespace nsrel::testing
