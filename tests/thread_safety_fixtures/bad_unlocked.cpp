// MUST NOT COMPILE under clang++ -Wthread-safety -Werror: reads and
// writes a GUARDED_BY field without holding its mutex. If this file
// ever compiles under the gate, the gate is broken.
#include "guarded.hpp"

namespace nsrel::testing {

class RacyCounter : public GuardedCounter {
 public:
  long racy_read() {
    return value_;  // no lock held: -Wthread-safety rejects this
  }

  void racy_write(long v) {
    value_ = v;  // no lock held: -Wthread-safety rejects this
  }
};

}  // namespace nsrel::testing

int main() {
  nsrel::testing::RacyCounter counter;
  counter.racy_write(1);
  return static_cast<int>(counter.racy_read());
}
