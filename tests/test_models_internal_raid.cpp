// Tests for the hierarchical internal-RAID node-level models
// (Figures 5, 6, 7): chain structure, critical factors, closed-form vs
// exact agreement, and monotonicity properties.
#include <algorithm>
#include <gtest/gtest.h>

#include "combinat/critical_sets.hpp"
#include "models/internal_raid.hpp"
#include "util/assert.hpp"

namespace nsrel::models {
namespace {

InternalRaidParams baseline(int fault_tolerance) {
  InternalRaidParams p;
  p.node_set_size = 64;
  p.redundancy_set_size = 8;
  p.fault_tolerance = fault_tolerance;
  p.node_failure = PerHour(1.0 / 400'000.0);
  p.node_rebuild = PerHour(0.19);          // ~5.3 h node rebuild
  p.array_failure = PerHour(5.7e-8);       // RAID 5 baseline lambda_D
  p.sector_error = PerHour(1.06e-8);       // RAID 5 baseline lambda_S
  return p;
}

TEST(InternalRaid, ChainSizeMatchesFaultTolerance) {
  for (int t = 1; t <= 4; ++t) {
    const InternalRaidNodeModel model(baseline(t));
    const auto chain = model.chain();
    EXPECT_EQ(chain.transient_count(), static_cast<std::size_t>(t) + 1);
    EXPECT_EQ(chain.absorbing_count(), 1u);
  }
}

TEST(InternalRaid, CriticalFactorsMatchSection521) {
  EXPECT_DOUBLE_EQ(InternalRaidNodeModel(baseline(1)).critical_factor(), 1.0);
  EXPECT_DOUBLE_EQ(InternalRaidNodeModel(baseline(2)).critical_factor(),
                   7.0 / 63.0);
  EXPECT_DOUBLE_EQ(InternalRaidNodeModel(baseline(3)).critical_factor(),
                   (7.0 * 6.0) / (63.0 * 62.0));
}

TEST(InternalRaid, Ft1FullFormulaSolvesChainExactly) {
  const InternalRaidParams p = baseline(1);
  const InternalRaidNodeModel model(p);
  const double exact = model.mttdl_exact().value();
  const double full = internal_raid_ft1_full(p).value();
  EXPECT_NEAR(full, exact, 1e-9 * exact);
}

TEST(InternalRaid, ClosedFormTracksExactForAllTolerances) {
  for (int t = 1; t <= 3; ++t) {
    const InternalRaidNodeModel model(baseline(t));
    const double exact = model.mttdl_exact().value();
    const double closed = model.mttdl_closed_form().value();
    EXPECT_NEAR(closed, exact, 0.01 * exact) << "t=" << t;
  }
}

TEST(InternalRaid, MttdlGrowsSteeplyWithFaultTolerance) {
  // Each extra tolerated failure buys roughly mu/(N lambda) ~ 1e3 at
  // baseline rates.
  const double ft1 = InternalRaidNodeModel(baseline(1)).mttdl_exact().value();
  const double ft2 = InternalRaidNodeModel(baseline(2)).mttdl_exact().value();
  const double ft3 = InternalRaidNodeModel(baseline(3)).mttdl_exact().value();
  EXPECT_GT(ft2, 100.0 * ft1);
  EXPECT_GT(ft3, 100.0 * ft2);
}

TEST(InternalRaid, NodeFailureDominatesWhenArrayRatesAreSmall) {
  // Zeroing the array contribution barely moves the result at baseline:
  // the paper's explanation for why RAID 6 adds nothing over RAID 5.
  InternalRaidParams with_array = baseline(2);
  InternalRaidParams without_array = baseline(2);
  without_array.array_failure = PerHour(0.0);
  without_array.sector_error = PerHour(0.0);
  const double with = InternalRaidNodeModel(with_array).mttdl_exact().value();
  const double without =
      InternalRaidNodeModel(without_array).mttdl_exact().value();
  EXPECT_NEAR(with, without, 0.15 * without);
}

TEST(InternalRaid, FasterNodeRebuildImprovesMttdlQuadraticallyAtFt2) {
  // MTTDL ~ mu^t: doubling mu at t=2 should quadruple MTTDL (approx).
  InternalRaidParams p = baseline(2);
  const double base = InternalRaidNodeModel(p).mttdl_exact().value();
  p.node_rebuild = PerHour(2.0 * p.node_rebuild.value());
  const double doubled = InternalRaidNodeModel(p).mttdl_exact().value();
  EXPECT_NEAR(doubled / base, 4.0, 0.05 * 4.0);
}

TEST(InternalRaid, MttdlScalesInverselyWithNodeSetSizeSquaredAtFt1) {
  // FT1: MTTDL ~ 1/(N(N-1)).
  InternalRaidParams small = baseline(1);
  small.node_set_size = 16;
  small.redundancy_set_size = 8;
  InternalRaidParams large = baseline(1);
  large.node_set_size = 32;
  large.redundancy_set_size = 8;
  const double ratio = InternalRaidNodeModel(small).mttdl_exact().value() /
                       InternalRaidNodeModel(large).mttdl_exact().value();
  EXPECT_NEAR(ratio, (32.0 * 31.0) / (16.0 * 15.0), 0.02 * ratio);
}

TEST(InternalRaid, SectorErrorsReduceMttdl) {
  InternalRaidParams noisy = baseline(2);
  noisy.sector_error = PerHour(1e-5);  // exaggerated lambda_S
  const double clean = InternalRaidNodeModel(baseline(2)).mttdl_exact().value();
  const double dirty = InternalRaidNodeModel(noisy).mttdl_exact().value();
  EXPECT_LT(dirty, clean);
}

TEST(InternalRaid, ConcurrentRepairPolicy) {
  // FT1: identical. FT2 at stressed rates: concurrent wins. Baseline:
  // nearly indistinguishable (the paper's simplification is sound).
  InternalRaidParams ft1 = baseline(1);
  const double ft1_single = InternalRaidNodeModel(ft1).mttdl_exact().value();
  ft1.repair_policy = RepairPolicy::kConcurrent;
  EXPECT_NEAR(InternalRaidNodeModel(ft1).mttdl_exact().value(), ft1_single,
              1e-12 * ft1_single);

  InternalRaidParams stressed = baseline(3);
  stressed.node_failure = PerHour(0.01);
  const double single =
      InternalRaidNodeModel(stressed).mttdl_exact().value();
  stressed.repair_policy = RepairPolicy::kConcurrent;
  const double concurrent =
      InternalRaidNodeModel(stressed).mttdl_exact().value();
  EXPECT_GT(concurrent, 1.1 * single);

  // In the mu >> N*lambda regime MTTDL is proportional to the PRODUCT of
  // the repair rates along the degradation path, so concurrent repair
  // buys exactly t! — a factor of 2 at FT2 (the single-repair assumption
  // in the paper's chains is conservative by that much).
  InternalRaidParams base = baseline(2);
  const double base_single = InternalRaidNodeModel(base).mttdl_exact().value();
  base.repair_policy = RepairPolicy::kConcurrent;
  const double base_concurrent =
      InternalRaidNodeModel(base).mttdl_exact().value();
  EXPECT_NEAR(base_concurrent / base_single, 2.0, 0.02);

  InternalRaidParams ft3 = baseline(3);
  const double ft3_single = InternalRaidNodeModel(ft3).mttdl_exact().value();
  ft3.repair_policy = RepairPolicy::kConcurrent;
  const double ft3_concurrent =
      InternalRaidNodeModel(ft3).mttdl_exact().value();
  EXPECT_NEAR(ft3_concurrent / ft3_single, 6.0, 0.1);  // 3!
}

TEST(InternalRaid, RejectsInvalidParameters) {
  InternalRaidParams p = baseline(2);
  p.fault_tolerance = 0;
  EXPECT_THROW(InternalRaidNodeModel{p}, ContractViolation);
  p = baseline(2);
  p.node_rebuild = PerHour(0.0);
  EXPECT_THROW(InternalRaidNodeModel{p}, ContractViolation);
  p = baseline(2);
  p.redundancy_set_size = 2;  // R <= t
  EXPECT_THROW(InternalRaidNodeModel{p}, ContractViolation);
  EXPECT_THROW((void)internal_raid_ft1_full(baseline(2)), ContractViolation);
}

class InternalRaidSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InternalRaidSweep, ClosedFormAgreesAcrossNandT) {
  const auto [n, t] = GetParam();
  InternalRaidParams p = baseline(t);
  p.node_set_size = n;
  p.redundancy_set_size = std::min(8, n);
  const InternalRaidNodeModel model(p);
  const double exact = model.mttdl_exact().value();
  const double closed = model.mttdl_closed_form().value();
  EXPECT_NEAR(closed, exact, 0.02 * exact);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InternalRaidSweep,
    ::testing::Combine(::testing::Values(8, 16, 32, 64, 128),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace nsrel::models
