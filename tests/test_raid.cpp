// Tests for the internal RAID array models (Figures 1 and 4): chain
// structure, exact-vs-closed-form agreement, and the lambda_D / lambda_S
// exports used by the hierarchical node models.
#include <gtest/gtest.h>

#include "ctmc/absorbing.hpp"
#include "raid/array_model.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::raid {
namespace {

ArrayParams baseline() {
  ArrayParams p;
  p.drives = 12;
  p.drive_mttf = Hours(300'000.0);
  p.restripe_rate = PerHour(1.0 / 39.2);  // ~ the baseline re-stripe rate
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

ArrayParams no_her() {
  ArrayParams p = baseline();
  p.her_per_byte = 0.0;
  return p;
}

TEST(Raid5, ChainHasThreeStatesPlusLoss) {
  const auto model = raid5(baseline());
  const auto chain = model.chain();
  EXPECT_EQ(chain.state_count(), 3u);
  EXPECT_EQ(chain.transient_count(), 2u);
  EXPECT_EQ(chain.absorbing_count(), 1u);
}

TEST(Raid5, CriticalHardErrorProbabilityMatchesPaper) {
  // h = (d-1) * C * HER = 11 * 0.024 = 0.264.
  const auto model = raid5(baseline());
  EXPECT_DOUBLE_EQ(model.critical_hard_error_probability(), 11.0 * 0.024);
}

TEST(Raid5, FullClosedFormIsExactWithoutHer) {
  // With HER = 0 the printed pre-approximation formula solves the chain
  // exactly: ((2d-1)lambda + mu) / (d(d-1)lambda^2).
  const ArrayParams p = no_her();
  const auto model = raid5(p);
  const double exact = model.mttdl_exact().value();
  const double full = raid5_mttdl_full(p).value();
  EXPECT_NEAR(exact, full, 1e-9 * exact);
}

TEST(Raid5, FullClosedFormTracksExactWithSmallHer) {
  // With a tiny HER the linear and saturated hard-error models coincide.
  ArrayParams p = baseline();
  p.her_per_byte = 1e-18;
  const auto model = raid5(p);
  EXPECT_NEAR(model.mttdl_exact().value(), raid5_mttdl_full(p).value(),
              1e-6 * model.mttdl_exact().value());
}

TEST(Raid5, ApproximationWithinTolerance) {
  // The paper's approximation drops lambda-order terms AND keeps the
  // linear hard-error model, while the exact chain saturates h = 0.264 to
  // 0.232 — a known ~12% divergence at baseline HER.
  const auto model = raid5(baseline());
  const double exact = model.mttdl_exact().value();
  const double closed = model.mttdl_closed_form().value();
  EXPECT_NEAR(closed, exact, 0.15 * exact);
}

TEST(Raid5, RatesMatchPaperFormulas) {
  const ArrayParams p = baseline();
  const auto rates = raid5(p).rates();
  const double lambda = 1.0 / 300'000.0;
  const double mu = p.restripe_rate.value();
  EXPECT_NEAR(rates.array_failure.value(), 132.0 * lambda * lambda / mu,
              1e-15);
  EXPECT_NEAR(rates.sector_error.value(), 132.0 * lambda * 0.024, 1e-15);
}

TEST(Raid6, ChainHasFourStatesPlusLoss) {
  const auto model = raid6(baseline());
  const auto chain = model.chain();
  EXPECT_EQ(chain.state_count(), 4u);
  EXPECT_EQ(chain.transient_count(), 3u);
}

TEST(Raid6, CriticalHardErrorProbability) {
  // Rebuilding with two drives gone reads d-2 survivors.
  const auto model = raid6(baseline());
  EXPECT_DOUBLE_EQ(model.critical_hard_error_probability(), 10.0 * 0.024);
}

TEST(Raid6, RatesMatchPaperFormulas) {
  const ArrayParams p = baseline();
  const auto rates = raid6(p).rates();
  const double lambda = 1.0 / 300'000.0;
  const double mu = p.restripe_rate.value();
  const double ff = 12.0 * 11.0 * 10.0;
  EXPECT_NEAR(rates.array_failure.value(),
              ff * lambda * lambda * lambda / (mu * mu), 1e-20);
  EXPECT_NEAR(rates.sector_error.value(), ff * lambda * lambda * 0.024 / mu,
              1e-18);
}

TEST(Raid6, ApproximationWithinTolerance) {
  // Same linear-vs-saturated divergence as RAID 5 (h = 0.24 here).
  const auto model = raid6(baseline());
  const double exact = model.mttdl_exact().value();
  const double closed = model.mttdl_closed_form().value();
  EXPECT_NEAR(closed, exact, 0.15 * exact);
}

TEST(Raid6, FarMoreReliableThanRaid5) {
  // In isolation RAID 6 beats RAID 5 by orders of magnitude — the paper's
  // point is that this advantage vanishes at the NODE level, not here.
  const double r5 = raid5(baseline()).mttdl_exact().value();
  const double r6 = raid6(baseline()).mttdl_exact().value();
  EXPECT_GT(r6, 100.0 * r5);
}

TEST(GeneralArray, ClosedFormMatchesExactAcrossTolerances) {
  for (int m = 1; m <= 4; ++m) {
    ArrayParams p = no_her();
    p.drives = 16;
    const GeneralArrayModel model(p, m);
    const double exact = model.mttdl_exact().value();
    const double closed = model.mttdl_closed_form().value();
    // Approximation error grows with m but stays small while mu >> d*lambda.
    EXPECT_NEAR(closed, exact, 0.02 * exact) << "m=" << m;
  }
}

TEST(GeneralArray, MttdlGrowsWithFaultTolerance) {
  double previous = 0.0;
  for (int m = 1; m <= 4; ++m) {
    const GeneralArrayModel model(no_her(), m);
    const double mttdl = model.mttdl_exact().value();
    EXPECT_GT(mttdl, previous) << "m=" << m;
    previous = mttdl;
  }
}

TEST(GeneralArray, MttdlFallsWithMoreDrives) {
  double previous = 1e300;
  for (int d = 6; d <= 24; d += 6) {
    ArrayParams p = baseline();
    p.drives = d;
    const double mttdl = GeneralArrayModel(p, 1).mttdl_exact().value();
    EXPECT_LT(mttdl, previous) << "d=" << d;
    previous = mttdl;
  }
}

TEST(GeneralArray, FasterRestripeImprovesMttdl) {
  ArrayParams slow = baseline();
  slow.restripe_rate = PerHour(0.01);
  ArrayParams fast = baseline();
  fast.restripe_rate = PerHour(1.0);
  EXPECT_GT(GeneralArrayModel(fast, 1).mttdl_exact().value(),
            GeneralArrayModel(slow, 1).mttdl_exact().value());
}

TEST(GeneralArray, RejectsInvalidParameters) {
  EXPECT_THROW(GeneralArrayModel(baseline(), 0), ContractViolation);
  EXPECT_THROW(GeneralArrayModel(baseline(), 12), ContractViolation);
  ArrayParams p = baseline();
  p.restripe_rate = PerHour(0.0);
  EXPECT_THROW(GeneralArrayModel(p, 1), ContractViolation);
}

TEST(GeneralArray, AbsorptionProbabilitySplitsFailureAndSectorPaths) {
  // With HER = 0, all absorption flows through the drive-failure path;
  // turning HER on shifts probability mass to the hard-error path.
  const auto analysis_no_her =
      ctmc::AbsorbingSolver::analyze(raid5(no_her()).chain());
  EXPECT_NEAR(analysis_no_her.absorption_probability[0], 1.0, 1e-9);
  const double mttdl_no_her =
      analysis_no_her.mean_time_to_absorption_hours;
  const double mttdl_with_her = raid5(baseline()).mttdl_exact().value();
  EXPECT_LT(mttdl_with_her, mttdl_no_her);
}

}  // namespace
}  // namespace nsrel::raid
