// Tests for the grid-evaluation engine: grid construction, parallel
// jobs-invariance, solve-cache correctness, and the renderers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/solve_cache.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "util/assert.hpp"

namespace nsrel::engine {
namespace {

const std::vector<core::Configuration> kMixedConfigurations = {
    {core::InternalScheme::kNone, 2}, {core::InternalScheme::kRaid5, 2}};

Grid small_sweep() {
  return parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                         spaced_points(100e3, 750e3, 5, true),
                         kMixedConfigurations);
}

std::string to_json(const ResultSet& results) {
  std::ostringstream out;
  write_json(results, out);
  return out.str();
}

TEST(SpacedPoints, LogAndLinearSpacing) {
  const auto log_pts = spaced_points(1.0, 100.0, 3, true);
  ASSERT_EQ(log_pts.size(), 3u);
  EXPECT_DOUBLE_EQ(log_pts[0], 1.0);
  EXPECT_DOUBLE_EQ(log_pts[1], 10.0);
  EXPECT_DOUBLE_EQ(log_pts[2], 100.0);

  const auto lin_pts = spaced_points(0.0, 10.0, 5, false);
  ASSERT_EQ(lin_pts.size(), 5u);
  EXPECT_DOUBLE_EQ(lin_pts[1], 2.5);
  EXPECT_DOUBLE_EQ(lin_pts[4], 10.0);
}

TEST(SpacedPoints, RejectsBadRanges) {
  EXPECT_THROW((void)spaced_points(1.0, 2.0, 1, false), ContractViolation);
  EXPECT_THROW((void)spaced_points(0.0, 2.0, 3, true), ContractViolation);
  EXPECT_THROW((void)spaced_points(5.0, 2.0, 3, true), ContractViolation);
}

TEST(GridBuilders, ParameterSweepUsesCanonicalNames) {
  const Grid grid = parameter_sweep(core::SystemConfig::baseline(), "util",
                                    {0.5, 0.9}, kMixedConfigurations);
  EXPECT_EQ(grid.axis, "util");
  ASSERT_EQ(grid.points.size(), 2u);
  EXPECT_DOUBLE_EQ(grid.points[0].system.capacity_utilization, 0.5);
  EXPECT_DOUBLE_EQ(grid.points[1].system.capacity_utilization, 0.9);
  EXPECT_THROW((void)parameter_sweep(core::SystemConfig::baseline(),
                                     "wombats", {1.0}, kMixedConfigurations),
               ContractViolation);
}

TEST(GridBuilders, SinglePointHasNoAxis) {
  const Grid grid =
      single_point(core::SystemConfig::baseline(), kMixedConfigurations);
  EXPECT_FALSE(grid.has_axis());
  ASSERT_EQ(grid.points.size(), 1u);
  EXPECT_EQ(grid.points[0].label, "events/PB-yr");
}

TEST(Evaluate, MatchesDirectAnalyzerCalls) {
  const Grid grid = small_sweep();
  const ResultSet results = evaluate(grid);
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    const core::Analyzer analyzer(grid.points[p].system);
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      const auto direct = analyzer.analyze(grid.configurations[c]);
      EXPECT_EQ(results.at(p, c).mttdl.value(), direct.mttdl.value());
      EXPECT_EQ(results.at(p, c).events_per_pb_year,
                direct.events_per_pb_year);
    }
  }
}

TEST(Evaluate, JobsInvariantToTheByte) {
  const Grid grid = small_sweep();
  const std::string serial = to_json(evaluate(grid, {.jobs = 1}));
  const std::string two = to_json(evaluate(grid, {.jobs = 2}));
  const std::string eight = to_json(evaluate(grid, {.jobs = 8}));
  const std::string all = to_json(evaluate(grid, {.jobs = 0}));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  EXPECT_EQ(serial, all);
}

TEST(Evaluate, SharedCacheSecondRunIsAllHitsAndBitwiseEqual) {
  const Grid grid = small_sweep();
  core::SolveCache cache;
  const ResultSet first = evaluate(grid, {.jobs = 1, .cache = &cache});
  const auto after_first = first.cache_stats();
  const ResultSet second = evaluate(grid, {.jobs = 1, .cache = &cache});
  const auto after_second = second.cache_stats();

  // Every solve of the second run hit the cache.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.hits - after_first.hits,
            after_second.lookups() - after_first.lookups());

  // And hits reproduce the fresh solves exactly, bit for bit.
  for (std::size_t p = 0; p < first.point_count(); ++p) {
    for (std::size_t c = 0; c < first.configuration_count(); ++c) {
      EXPECT_EQ(first.at(p, c).mttdl.value(), second.at(p, c).mttdl.value());
      EXPECT_EQ(first.at(p, c).events_per_pb_year,
                second.at(p, c).events_per_pb_year);
    }
  }
}

TEST(Evaluate, RestripeSweepDedupesUnchangedNirModel) {
  // restripe-kb is not a NoInternalRaidParams input, so every point of a
  // no-internal-RAID sweep shares one Markov model: 1 solve, N-1 hits.
  const Grid grid = parameter_sweep(core::SystemConfig::baseline(),
                                    "restripe-kb",
                                    spaced_points(64.0, 4096.0, 8, true),
                                    {{core::InternalScheme::kNone, 2}});
  const ResultSet results = evaluate(grid, {.jobs = 1});
  EXPECT_EQ(results.cache_stats().misses, 1u);
  EXPECT_EQ(results.cache_stats().hits, 7u);
}

TEST(Evaluate, CacheIsKeyedOnMethod) {
  Grid grid = single_point(core::SystemConfig::baseline(),
                           {{core::InternalScheme::kNone, 2}});
  core::SolveCache cache;
  (void)evaluate(grid, {.cache = &cache});
  grid.method = core::Method::kClosedForm;
  const ResultSet closed = evaluate(grid, {.cache = &cache});
  // The closed form must not be served the exact chain's cached solve.
  EXPECT_EQ(closed.cache_stats().misses, 2u);
}

TEST(Render, EventsTableShape) {
  const ResultSet results = evaluate(
      single_point(core::SystemConfig::baseline(), kMixedConfigurations));
  const core::ReliabilityTarget target = core::ReliabilityTarget::paper();
  std::ostringstream csv;
  events_table(results, nullptr).print_csv(csv);
  // Configuration names contain commas, so the CSV header quotes them.
  EXPECT_NE(csv.str().find("metric,\"FT2, No Internal RAID\""),
            std::string::npos);
  EXPECT_EQ(csv.str().find('*'), std::string::npos);
  // The marked variant tags cells meeting the target.
  const std::string marked = events_table(results, &target).to_string();
  EXPECT_NE(marked.find(" *"), std::string::npos);
}

TEST(Render, SweepTableMatchesLegacyCliShape) {
  const ResultSet results =
      evaluate(parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                               spaced_points(100e3, 750e3, 3, true),
                               {{core::InternalScheme::kRaid5, 2}}));
  std::ostringstream csv;
  sweep_table(results).print_csv(csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "drive-mttf,MTTDL (h),events/PB-yr");
  // Multi-configuration sweeps qualify the value columns.
  const ResultSet multi =
      evaluate(parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                               spaced_points(100e3, 750e3, 3, true),
                               kMixedConfigurations));
  std::ostringstream multi_csv;
  sweep_table(multi).print_csv(multi_csv);
  EXPECT_NE(multi_csv.str().find("FT2, Internal RAID 5 MTTDL (h)"),
            std::string::npos);
}

TEST(Render, CompareTableListsConfigurations) {
  const ResultSet results = evaluate(
      single_point(core::SystemConfig::baseline(), kMixedConfigurations));
  const report::Table table =
      compare_table(results, core::ReliabilityTarget::paper());
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("configuration,MTTDL,events/PB-yr,meets"),
            std::string::npos);
}

TEST(Render, JsonRoundTripsNumbersExactly) {
  const ResultSet results = evaluate(small_sweep());
  const std::string json = to_json(results);
  // Pull every mttdl_hours value back out and compare bitwise against
  // the cells (shortest-round-trip formatting must lose nothing).
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      const std::size_t at = json.find("\"mttdl_hours\": ", cursor);
      ASSERT_NE(at, std::string::npos);
      cursor = at + std::string("\"mttdl_hours\": ").size();
      EXPECT_EQ(std::strtod(json.c_str() + cursor, nullptr),
                results.at(p, c).mttdl.value());
    }
  }
  // Internal-RAID cells expose the array rates; NIR cells omit them.
  EXPECT_NE(json.find("\"array_failure_per_hour\""), std::string::npos);
  EXPECT_NE(json.find("\"axis\": \"drive-mttf\""), std::string::npos);
}

}  // namespace
}  // namespace nsrel::engine
