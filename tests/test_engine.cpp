// Tests for the grid-evaluation engine: grid construction, parallel
// jobs-invariance, solve-cache correctness, and the renderers.
#include <cstddef>
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/solve_cache.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "engine/testing.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::engine {
namespace {

const std::vector<core::Configuration> kMixedConfigurations = {
    {core::InternalScheme::kNone, 2}, {core::InternalScheme::kRaid5, 2}};

Grid small_sweep() {
  return parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                         spaced_points(100e3, 750e3, 5, true),
                         kMixedConfigurations);
}

std::string to_json(const ResultSet& results) {
  std::ostringstream out;
  write_json(results, out);
  return out.str();
}

TEST(SpacedPoints, LogAndLinearSpacing) {
  const auto log_pts = spaced_points(1.0, 100.0, 3, true);
  ASSERT_EQ(log_pts.size(), 3u);
  EXPECT_DOUBLE_EQ(log_pts[0], 1.0);
  EXPECT_DOUBLE_EQ(log_pts[1], 10.0);
  EXPECT_DOUBLE_EQ(log_pts[2], 100.0);

  const auto lin_pts = spaced_points(0.0, 10.0, 5, false);
  ASSERT_EQ(lin_pts.size(), 5u);
  EXPECT_DOUBLE_EQ(lin_pts[1], 2.5);
  EXPECT_DOUBLE_EQ(lin_pts[4], 10.0);
}

TEST(SpacedPoints, RejectsBadRanges) {
  EXPECT_THROW((void)spaced_points(1.0, 2.0, 1, false), ContractViolation);
  EXPECT_THROW((void)spaced_points(0.0, 2.0, 3, true), ContractViolation);
  EXPECT_THROW((void)spaced_points(5.0, 2.0, 3, true), ContractViolation);
}

TEST(GridBuilders, ParameterSweepUsesCanonicalNames) {
  const Grid grid = parameter_sweep(core::SystemConfig::baseline(), "util",
                                    {0.5, 0.9}, kMixedConfigurations);
  ASSERT_EQ(grid.axes.size(), 1u);
  EXPECT_EQ(grid.axes[0].name, "util");
  EXPECT_EQ(grid.axis_header(), "util");
  ASSERT_EQ(grid.points.size(), 2u);
  EXPECT_DOUBLE_EQ(grid.points[0].system.capacity_utilization, 0.5);
  EXPECT_DOUBLE_EQ(grid.points[1].system.capacity_utilization, 0.9);
  EXPECT_THROW((void)parameter_sweep(core::SystemConfig::baseline(),
                                     "wombats", {1.0}, kMixedConfigurations),
               ContractViolation);
}

TEST(GridBuilders, SinglePointHasNoAxis) {
  const Grid grid =
      single_point(core::SystemConfig::baseline(), kMixedConfigurations);
  EXPECT_FALSE(grid.has_axis());
  ASSERT_EQ(grid.points.size(), 1u);
  EXPECT_EQ(grid.points[0].label, "events/PB-yr");
}

TEST(Evaluate, MatchesDirectAnalyzerCalls) {
  const Grid grid = small_sweep();
  const ResultSet results = evaluate(grid);
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    const core::Analyzer analyzer(grid.points[p].system);
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      const auto direct = analyzer.analyze(grid.configurations[c]);
      EXPECT_EQ(results.at(p, c).mttdl.value(), direct.mttdl.value());
      EXPECT_EQ(results.at(p, c).events_per_pb_year,
                direct.events_per_pb_year);
    }
  }
}

TEST(Evaluate, JobsInvariantToTheByte) {
  const Grid grid = small_sweep();
  const std::string serial = to_json(evaluate(grid, {.jobs = 1}));
  const std::string two = to_json(evaluate(grid, {.jobs = 2}));
  const std::string eight = to_json(evaluate(grid, {.jobs = 8}));
  const std::string all = to_json(evaluate(grid, {.jobs = 0}));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  EXPECT_EQ(serial, all);
}

TEST(Evaluate, SharedCacheSecondRunIsAllHitsAndBitwiseEqual) {
  const Grid grid = small_sweep();
  core::SolveCache cache;
  const ResultSet first = evaluate(grid, {.jobs = 1, .cache = &cache});
  const auto after_first = first.cache_stats();
  const ResultSet second = evaluate(grid, {.jobs = 1, .cache = &cache});
  const auto after_second = second.cache_stats();

  // Every solve of the second run hit the cache.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.hits - after_first.hits,
            after_second.lookups() - after_first.lookups());

  // And hits reproduce the fresh solves exactly, bit for bit.
  for (std::size_t p = 0; p < first.point_count(); ++p) {
    for (std::size_t c = 0; c < first.configuration_count(); ++c) {
      EXPECT_EQ(first.at(p, c).mttdl.value(), second.at(p, c).mttdl.value());
      EXPECT_EQ(first.at(p, c).events_per_pb_year,
                second.at(p, c).events_per_pb_year);
    }
  }
}

TEST(Evaluate, RestripeSweepDedupesUnchangedNirModel) {
  // restripe-kb is not a NoInternalRaidParams input, so every point of a
  // no-internal-RAID sweep shares one Markov model: 1 solve, N-1 hits.
  const Grid grid = parameter_sweep(core::SystemConfig::baseline(),
                                    "restripe-kb",
                                    spaced_points(64.0, 4096.0, 8, true),
                                    {{core::InternalScheme::kNone, 2}});
  const ResultSet results = evaluate(grid, {.jobs = 1});
  EXPECT_EQ(results.cache_stats().misses, 1u);
  EXPECT_EQ(results.cache_stats().hits, 7u);
}

TEST(Evaluate, CacheIsKeyedOnMethod) {
  Grid grid = single_point(core::SystemConfig::baseline(),
                           {{core::InternalScheme::kNone, 2}});
  core::SolveCache cache;
  (void)evaluate(grid, {.cache = &cache});
  grid.method = core::Method::kClosedForm;
  const ResultSet closed = evaluate(grid, {.cache = &cache});
  // The closed form must not be served the exact chain's cached solve.
  EXPECT_EQ(closed.cache_stats().misses, 2u);
}

TEST(Render, EventsTableShape) {
  const ResultSet results = evaluate(
      single_point(core::SystemConfig::baseline(), kMixedConfigurations));
  const core::ReliabilityTarget target = core::ReliabilityTarget::paper();
  std::ostringstream csv;
  events_table(results, nullptr).print_csv(csv);
  // Configuration names contain commas, so the CSV header quotes them.
  EXPECT_NE(csv.str().find("metric,\"FT2, No Internal RAID\""),
            std::string::npos);
  EXPECT_EQ(csv.str().find('*'), std::string::npos);
  // The marked variant tags cells meeting the target.
  const std::string marked = events_table(results, &target).to_string();
  EXPECT_NE(marked.find(" *"), std::string::npos);
}

TEST(Render, SweepTableMatchesLegacyCliShape) {
  const ResultSet results =
      evaluate(parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                               spaced_points(100e3, 750e3, 3, true),
                               {{core::InternalScheme::kRaid5, 2}}));
  std::ostringstream csv;
  sweep_table(results).print_csv(csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "drive-mttf,MTTDL (h),events/PB-yr");
  // Multi-configuration sweeps qualify the value columns.
  const ResultSet multi =
      evaluate(parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                               spaced_points(100e3, 750e3, 3, true),
                               kMixedConfigurations));
  std::ostringstream multi_csv;
  sweep_table(multi).print_csv(multi_csv);
  EXPECT_NE(multi_csv.str().find("FT2, Internal RAID 5 MTTDL (h)"),
            std::string::npos);
}

TEST(Render, CompareTableListsConfigurations) {
  const ResultSet results = evaluate(
      single_point(core::SystemConfig::baseline(), kMixedConfigurations));
  const report::Table table =
      compare_table(results, core::ReliabilityTarget::paper());
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("configuration,MTTDL,events/PB-yr,meets"),
            std::string::npos);
}

TEST(Render, JsonRoundTripsNumbersExactly) {
  const ResultSet results = evaluate(small_sweep());
  const std::string json = to_json(results);
  // Pull every mttdl_hours value back out and compare bitwise against
  // the cells (shortest-round-trip formatting must lose nothing).
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      const std::size_t at = json.find("\"mttdl_hours\": ", cursor);
      ASSERT_NE(at, std::string::npos);
      cursor = at + std::string("\"mttdl_hours\": ").size();
      EXPECT_EQ(std::strtod(json.c_str() + cursor, nullptr),
                results.at(p, c).mttdl.value());
    }
  }
  // Internal-RAID cells expose the array rates; NIR cells omit them.
  EXPECT_NE(json.find("\"array_failure_per_hour\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"drive-mttf\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Cartesian grids: several named axes, flattened row-major with the
// last axis fastest; a single axis degenerates to the legacy shape.

TEST(CartesianGrid, FlattensRowMajorLastAxisFastest) {
  std::vector<AxisSpec> axes(2);
  axes[0].parameter = "drive-mttf";
  axes[0].values = {100e3, 500e3};
  axes[1].parameter = "link-gbps";
  axes[1].values = {1.0, 4.0, 10.0};
  const Grid grid = cartesian_sweep(core::SystemConfig::baseline(), axes,
                                    kMixedConfigurations);
  ASSERT_EQ(grid.axes.size(), 2u);
  EXPECT_EQ(grid.axis_header(), "drive-mttf x link-gbps");
  ASSERT_EQ(grid.points.size(), 6u);
  // Row-major: point index = outer * 3 + inner.
  for (std::size_t p = 0; p < 6; ++p) {
    ASSERT_EQ(grid.points[p].coords.size(), 2u);
    EXPECT_DOUBLE_EQ(grid.points[p].coords[0], axes[0].values[p / 3]);
    EXPECT_DOUBLE_EQ(grid.points[p].coords[1], axes[1].values[p % 3]);
    EXPECT_DOUBLE_EQ(grid.points[p].system.drive.mttf.value(),
                     axes[0].values[p / 3]);
  }
  // Labels join per-axis labels with " x ".
  EXPECT_NE(grid.points[0].label.find(" x "), std::string::npos);
}

TEST(CartesianGrid, RejectsUnknownParameterAndEmptyAxes) {
  std::vector<AxisSpec> axes(1);
  axes[0].parameter = "wombats";
  axes[0].values = {1.0};
  EXPECT_THROW((void)cartesian_sweep(core::SystemConfig::baseline(), axes,
                                     kMixedConfigurations),
               ContractViolation);
  EXPECT_THROW((void)cartesian_sweep(core::SystemConfig::baseline(), {},
                                     kMixedConfigurations),
               ContractViolation);
}

TEST(CartesianGrid, SingleAxisMatchesLegacySweepByte) {
  // The 1-axis cartesian grid must be indistinguishable from the old
  // single-axis builder: same points, same labels, same rendered bytes.
  std::vector<AxisSpec> axes(1);
  axes[0].parameter = "drive-mttf";
  axes[0].values = spaced_points(100e3, 750e3, 5, true);
  const Grid cartesian = cartesian_sweep(core::SystemConfig::baseline(), axes,
                                         kMixedConfigurations);
  const Grid legacy = small_sweep();
  ASSERT_EQ(cartesian.points.size(), legacy.points.size());
  for (std::size_t p = 0; p < legacy.points.size(); ++p) {
    EXPECT_EQ(cartesian.points[p].label, legacy.points[p].label);
  }
  EXPECT_EQ(to_json(evaluate(cartesian)), to_json(evaluate(legacy)));
}

TEST(CartesianGrid, ThreeAxisRenderersCarryJoinedHeader) {
  std::vector<AxisSpec> axes(3);
  axes[0].parameter = "drive-mttf";
  axes[0].values = {100e3, 500e3};
  axes[1].parameter = "link-gbps";
  axes[1].values = {1.0, 10.0};
  axes[2].parameter = "util";
  axes[2].values = {0.5, 0.9};
  const Grid grid = cartesian_sweep(core::SystemConfig::baseline(), axes,
                                    {{core::InternalScheme::kNone, 2}});
  ASSERT_EQ(grid.points.size(), 8u);
  const ResultSet results = evaluate(grid);
  std::ostringstream csv;
  sweep_table(results).print_csv(csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "drive-mttf x link-gbps x util,MTTDL (h),events/PB-yr");
  std::ostringstream table;
  events_table(results, nullptr).print(table);
  EXPECT_NE(table.str().find("drive-mttf x link-gbps x util"),
            std::string::npos);
  // First and last odometer rows carry the full 3-coordinate label.
  std::ostringstream json;
  write_json(results, json);
  EXPECT_NE(json.str().find("\"1.000e+05 x 1.000e+00 x 5.000e-01\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"5.000e+05 x 1.000e+01 x 9.000e-01\""),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Simulation grids: Monte-Carlo cells ride the same engine fan-out.

TEST(SimulationGrid, SingleCellMatchesDirectSimulateCall) {
  Grid grid = single_point(core::SystemConfig::baseline(),
                           {{core::InternalScheme::kNone, 2}});
  SimSpec spec;
  spec.trials = 64;
  spec.seed = 1234;
  grid.simulation = spec;
  const ResultSet results = evaluate(grid);
  ASSERT_TRUE(results.is_sim(0, 0));
  const sim::SimEstimate& cell = results.sim_at(0, 0);
  // cell_seed(seed, 0) == seed, so the first cell reproduces a direct
  // analyzer call with the user's seed bit-for-bit.
  EXPECT_EQ(cell.seed, 1234u);
  const core::Analyzer analyzer(grid.points[0].system);
  const sim::MttdlEstimate direct =
      analyzer.simulate_mttdl(grid.configurations[0], 64, 1234);
  EXPECT_EQ(cell.estimate.mean_hours, direct.mean_hours);
  EXPECT_EQ(cell.estimate.stddev_hours, direct.stddev_hours);
  EXPECT_EQ(cell.estimate.trials, direct.trials);
}

TEST(SimulationGrid, SweepIsJobsInvariantToTheByte) {
  Grid grid = parameter_sweep(core::SystemConfig::baseline(), "drive-mttf",
                              spaced_points(100e3, 750e3, 3, true),
                              kMixedConfigurations);
  SimSpec spec;
  spec.trials = 48;
  spec.seed = 99;
  grid.simulation = spec;
  const std::string serial = to_json(evaluate(grid, {.jobs = 1}));
  const std::string eight = to_json(evaluate(grid, {.jobs = 8}));
  EXPECT_EQ(serial, eight);
  EXPECT_NE(serial.find("\"kind\": \"sim\""), std::string::npos);
  EXPECT_NE(serial.find("\"trials\": 48"), std::string::npos);
}

TEST(SimulationGrid, CellSeedsAreDistinctAndStable) {
  EXPECT_EQ(cell_seed(42, 0), 42u);
  const std::uint64_t second = cell_seed(42, 1);
  EXPECT_NE(second, 42u);
  EXPECT_EQ(second, cell_seed(42, 1));  // pure function of (seed, index)
  EXPECT_NE(cell_seed(42, 1), cell_seed(42, 2));
  EXPECT_NE(cell_seed(42, 1), cell_seed(43, 1));
}

TEST(SimulationGrid, AnalyticAccessorRefusesSimCells) {
  Grid grid = single_point(core::SystemConfig::baseline(),
                           {{core::InternalScheme::kNone, 2}});
  SimSpec tiny;
  tiny.trials = 16;
  tiny.seed = 7;
  grid.simulation = tiny;
  const ResultSet results = evaluate(grid);
  EXPECT_TRUE(results.ok(0, 0));
  EXPECT_THROW((void)results.at(0, 0), ContractViolation);
  const ResultSet analytic = evaluate(single_point(
      core::SystemConfig::baseline(), {{core::InternalScheme::kNone, 2}}));
  EXPECT_FALSE(analytic.is_sim(0, 0));
  EXPECT_THROW((void)analytic.sim_at(0, 0), ContractViolation);
}

// ---------------------------------------------------------------------
// Fault isolation: injected faults land in their own cells, surviving
// cells still evaluate, and everything — recorded errors, rendered
// bytes, thrown exceptions — is identical at any jobs count.

class FaultIsolation : public ::testing::Test {
 protected:
  void SetUp() override { testing::clear_cell_faults(); }
  void TearDown() override { testing::clear_cell_faults(); }
};

TEST_F(FaultIsolation, EveryErrorClassLandsInItsOwnCell) {
  // 5 points x 2 configurations; one fault of each class in six
  // distinct cells, four cells left healthy.
  const Grid grid = small_sweep();
  const ErrorCode codes[] = {
      ErrorCode::kSingularGenerator, ErrorCode::kIllConditioned,
      ErrorCode::kNonFiniteResult,   ErrorCode::kInvalidParameter,
      ErrorCode::kContractViolation, ErrorCode::kInternal};
  for (std::size_t i = 0; i < 6; ++i) {
    testing::inject_cell_fault(i % 5, i / 5 == 0 ? 0 : 1, codes[i]);
  }

  const ResultSet results =
      evaluate(grid, {.jobs = 1, .on_error = OnError::kSkip});
  EXPECT_EQ(results.ok_count(), 4u);
  const std::vector<CellError> failures = results.errors();
  ASSERT_EQ(failures.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t point = i % 5;
    const std::size_t configuration = i / 5 == 0 ? 0 : 1;
    EXPECT_FALSE(results.ok(point, configuration));
    EXPECT_EQ(results.cell(point, configuration).error().code, codes[i]);
  }
  // Healthy cells match a fault-free run exactly.
  testing::clear_cell_faults();
  const ResultSet clean = evaluate(grid, {.jobs = 1});
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) continue;
      EXPECT_EQ(results.at(p, c).mttdl.value(), clean.at(p, c).mttdl.value());
    }
  }
}

TEST_F(FaultIsolation, NoWorkerExceptionIsEverLost) {
  // Regression for the parallel path's old `future.get()` behavior,
  // where only the first worker's exception survived: with several
  // failing cells, every one must be reported, identically at --jobs 1
  // and --jobs 8.
  const Grid grid = small_sweep();
  testing::inject_cell_fault(0, 1, ErrorCode::kSingularGenerator);
  testing::inject_cell_fault(2, 0, ErrorCode::kNonFiniteResult);
  testing::inject_cell_fault(4, 1, ErrorCode::kInternal);

  const ResultSet serial =
      evaluate(grid, {.jobs = 1, .on_error = OnError::kSkip});
  const ResultSet parallel =
      evaluate(grid, {.jobs = 8, .on_error = OnError::kSkip});
  const std::vector<CellError> serial_errors = serial.errors();
  const std::vector<CellError> parallel_errors = parallel.errors();
  ASSERT_EQ(serial_errors.size(), 3u);
  ASSERT_EQ(parallel_errors.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(serial_errors[i].point, parallel_errors[i].point);
    EXPECT_EQ(serial_errors[i].configuration,
              parallel_errors[i].configuration);
    EXPECT_EQ(serial_errors[i].error.message(),
              parallel_errors[i].error.message());
  }
}

TEST_F(FaultIsolation, RenderedOutputWithFailuresIsJobsInvariant) {
  const Grid grid = small_sweep();
  testing::inject_cell_fault(1, 0, ErrorCode::kIllConditioned);
  testing::inject_cell_fault(3, 1, ErrorCode::kInvalidParameter);

  const auto render_all = [](const ResultSet& results) {
    std::ostringstream text;
    events_table(results, nullptr).print(text);
    sweep_table(results).print_csv(text);
    write_json(results, text);
    return text.str();
  };
  const std::string serial =
      render_all(evaluate(grid, {.jobs = 1, .on_error = OnError::kSkip}));
  const std::string two =
      render_all(evaluate(grid, {.jobs = 2, .on_error = OnError::kSkip}));
  const std::string eight =
      render_all(evaluate(grid, {.jobs = 8, .on_error = OnError::kSkip}));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // The failed cells are marked with their stable codes...
  EXPECT_NE(serial.find("!ill_conditioned"), std::string::npos);
  EXPECT_NE(serial.find("!invalid_parameter"), std::string::npos);
  // ...and the JSON carries structured error records under schema v3.
  EXPECT_NE(serial.find("\"schema\": \"nsrel-resultset-v3\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"code\": \"ill_conditioned\""), std::string::npos);
  EXPECT_NE(serial.find("\"error\": null"), std::string::npos);
}

TEST_F(FaultIsolation, FailFastThrowsTheLowestIndexedFailureAtAnyJobs) {
  const Grid grid = small_sweep();
  testing::inject_cell_fault(1, 1, ErrorCode::kSingularGenerator);  // cell 3
  testing::inject_cell_fault(3, 0, ErrorCode::kNonFiniteResult);    // cell 6

  const auto thrown_message = [&](int jobs) {
    try {
      (void)evaluate(grid, {.jobs = jobs, .on_error = OnError::kFailFast});
    } catch (const ErrorException& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const std::string serial = thrown_message(1);
  EXPECT_NE(serial.find("singular_generator"), std::string::npos);
  EXPECT_NE(serial.find("point 1, configuration 1"), std::string::npos);
  EXPECT_EQ(serial, thrown_message(2));
  EXPECT_EQ(serial, thrown_message(8));
}

TEST_F(FaultIsolation, AbortEvaluatesEverythingThenThrowsTheSameError) {
  const Grid grid = small_sweep();
  testing::inject_cell_fault(1, 1, ErrorCode::kSingularGenerator);
  testing::inject_cell_fault(3, 0, ErrorCode::kNonFiniteResult);

  const auto thrown_code = [&](OnError policy) {
    try {
      (void)evaluate(grid, {.jobs = 4, .on_error = policy});
    } catch (const ErrorException& e) {
      return e.error().code;
    }
    return ErrorCode::kInternal;
  };
  EXPECT_EQ(thrown_code(OnError::kAbort), ErrorCode::kSingularGenerator);
  EXPECT_EQ(thrown_code(OnError::kFailFast), ErrorCode::kSingularGenerator);
  // The engine's default is fail-fast: exception semantics preserved.
  EXPECT_THROW((void)evaluate(grid, {.jobs = 1}), ErrorException);
}

TEST_F(FaultIsolation, ParsePolicyNames) {
  EXPECT_EQ(parse_on_error("skip"), OnError::kSkip);
  EXPECT_EQ(parse_on_error("fail"), OnError::kFailFast);
  EXPECT_THROW((void)parse_on_error("explode"), ContractViolation);
}

}  // namespace
}  // namespace nsrel::engine
