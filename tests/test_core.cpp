// Tests for the top-level Analyzer: configuration enumeration, capacity
// normalization, method agreement, and target evaluation.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/solve_cache.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::core {
namespace {

TEST(Configuration, InternalFaultTolerance) {
  EXPECT_EQ(internal_fault_tolerance(InternalScheme::kNone), 0);
  EXPECT_EQ(internal_fault_tolerance(InternalScheme::kRaid5), 1);
  EXPECT_EQ(internal_fault_tolerance(InternalScheme::kRaid6), 2);
}

TEST(Configuration, Names) {
  EXPECT_EQ(name(Configuration{InternalScheme::kRaid5, 2}),
            "FT2, Internal RAID 5");
  EXPECT_EQ(name(Configuration{InternalScheme::kNone, 3}),
            "FT3, No Internal RAID");
}

TEST(Configuration, AllConfigurationsAreTheNineOfFigure13) {
  const auto all = all_configurations();
  ASSERT_EQ(all.size(), 9u);
  // FT-major ordering, scheme minor.
  EXPECT_EQ(all[0], (Configuration{InternalScheme::kNone, 1}));
  EXPECT_EQ(all[4], (Configuration{InternalScheme::kRaid5, 2}));
  EXPECT_EQ(all[8], (Configuration{InternalScheme::kRaid6, 3}));
}

TEST(Configuration, SensitivitySetMatchesSection6DownSelect) {
  const auto survivors = sensitivity_configurations();
  ASSERT_EQ(survivors.size(), 3u);
  EXPECT_EQ(survivors[0], (Configuration{InternalScheme::kNone, 2}));
  EXPECT_EQ(survivors[1], (Configuration{InternalScheme::kRaid5, 2}));
  EXPECT_EQ(survivors[2], (Configuration{InternalScheme::kNone, 3}));
}

TEST(SystemConfig, BaselineIsValid) {
  EXPECT_NO_THROW(SystemConfig::baseline().validate());
}

TEST(SystemConfig, ValidationCatchesBadFields) {
  SystemConfig c = SystemConfig::baseline();
  c.node_set_size = 1;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = SystemConfig::baseline();
  c.redundancy_set_size = 100;  // > N
  EXPECT_THROW(c.validate(), ContractViolation);
  c = SystemConfig::baseline();
  c.capacity_utilization = 0.0;
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(Analyzer, CodeRateAccountsForBothLevels) {
  const Analyzer analyzer(SystemConfig::baseline());
  // NIR FT2: (8-2)/8; RAID 5 FT2: 6/8 * 11/12; RAID 6 FT3: 5/8 * 10/12.
  EXPECT_DOUBLE_EQ(analyzer.code_rate({InternalScheme::kNone, 2}), 0.75);
  EXPECT_DOUBLE_EQ(analyzer.code_rate({InternalScheme::kRaid5, 2}),
                   0.75 * 11.0 / 12.0);
  EXPECT_DOUBLE_EQ(analyzer.code_rate({InternalScheme::kRaid6, 3}),
                   (5.0 / 8.0) * (10.0 / 12.0));
}

TEST(Analyzer, LogicalCapacityBaseline) {
  const Analyzer analyzer(SystemConfig::baseline());
  // 64 nodes * 12 drives * 300 GB * 75% utilization * 6/8 = 129.6 TB.
  const double expected = 64.0 * 12.0 * 3e11 * 0.75 * 0.75;
  EXPECT_DOUBLE_EQ(
      analyzer.logical_capacity({InternalScheme::kNone, 2}).value(), expected);
}

TEST(Analyzer, EventsNormalizationIsConsistent) {
  const Analyzer analyzer(SystemConfig::baseline());
  const auto result = analyzer.analyze({InternalScheme::kNone, 2});
  const double years = to_years(result.mttdl);
  EXPECT_NEAR(result.events_per_system_year, 1.0 / years, 1e-12 / years);
  const double pb = result.logical_capacity.value() / 1e15;
  EXPECT_NEAR(result.events_per_pb_year, result.events_per_system_year / pb,
              1e-9 * result.events_per_pb_year);
}

TEST(Analyzer, ExactAndClosedFormAgreeAtBaseline) {
  const Analyzer analyzer(SystemConfig::baseline());
  for (const auto& config : sensitivity_configurations()) {
    const double exact =
        analyzer.mttdl(config, Method::kExactChain).value();
    const double closed =
        analyzer.mttdl(config, Method::kClosedForm).value();
    EXPECT_NEAR(closed, exact, 0.06 * exact) << name(config);
  }
}

TEST(Analyzer, InternalRaidConfigsReportArrayRates) {
  const Analyzer analyzer(SystemConfig::baseline());
  const auto ir = analyzer.analyze({InternalScheme::kRaid5, 2});
  EXPECT_GT(ir.array_failure_rate.value(), 0.0);
  EXPECT_GT(ir.sector_error_rate.value(), 0.0);
  const auto nir = analyzer.analyze({InternalScheme::kNone, 2});
  EXPECT_DOUBLE_EQ(nir.array_failure_rate.value(), 0.0);
  EXPECT_DOUBLE_EQ(nir.sector_error_rate.value(), 0.0);
}

TEST(Analyzer, Raid5ArrayRatesMatchPaperAtBaseline) {
  const Analyzer analyzer(SystemConfig::baseline());
  const auto result = analyzer.analyze({InternalScheme::kRaid5, 2});
  const double mu = result.rebuild.restripe_rate.value();
  const double lambda = 1.0 / 300'000.0;
  EXPECT_NEAR(result.array_failure_rate.value(), 132.0 * lambda * lambda / mu,
              1e-12);
  EXPECT_NEAR(result.sector_error_rate.value(), 132.0 * lambda * 0.024,
              1e-12);
}

TEST(Analyzer, RejectsFaultToleranceAtOrAboveR) {
  const Analyzer analyzer(SystemConfig::baseline());
  EXPECT_THROW((void)analyzer.analyze({InternalScheme::kNone, 8}),
               ContractViolation);
  EXPECT_THROW((void)analyzer.analyze({InternalScheme::kNone, 0}),
               ContractViolation);
}

TEST(Analyzer, HigherNodeFaultToleranceIsMoreReliable) {
  const Analyzer analyzer(SystemConfig::baseline());
  for (const InternalScheme scheme :
       {InternalScheme::kNone, InternalScheme::kRaid5}) {
    double previous = 1e300;
    for (int ft = 1; ft <= 3; ++ft) {
      const double events =
          analyzer.events_per_pb_year({scheme, ft});
      EXPECT_LT(events, previous) << scheme_name(scheme) << " ft=" << ft;
      previous = events;
    }
  }
}

TEST(SystemConfig, SetParameterCoversEveryAdvertisedName) {
  // Every name in parameter_names() must be settable and must actually
  // change the configuration (guards the CLI/scenario mapping).
  for (const std::string& name : parameter_names()) {
    SystemConfig config = SystemConfig::baseline();
    ASSERT_TRUE(set_parameter(config, name, 11.0)) << name;
  }
  SystemConfig config = SystemConfig::baseline();
  EXPECT_FALSE(set_parameter(config, "wombats", 1.0));
}

TEST(SystemConfig, SetParameterAppliesCorrectFields) {
  SystemConfig config = SystemConfig::baseline();
  ASSERT_TRUE(set_parameter(config, "n", 32.0));
  EXPECT_EQ(config.node_set_size, 32);
  ASSERT_TRUE(set_parameter(config, "drive-mttf", 1e5));
  EXPECT_DOUBLE_EQ(config.drive.mttf.value(), 1e5);
  ASSERT_TRUE(set_parameter(config, "her-exp", 15.0));
  EXPECT_NEAR(config.drive.her_per_byte, 8e-15, 1e-25);
  ASSERT_TRUE(set_parameter(config, "rebuild-kb", 64.0));
  EXPECT_DOUBLE_EQ(config.rebuild_command.value(), 65536.0);
  ASSERT_TRUE(set_parameter(config, "link-gbps", 3.0));
  EXPECT_DOUBLE_EQ(config.link.raw_speed.value(), 3e9);
  ASSERT_TRUE(set_parameter(config, "util", 0.6));
  EXPECT_DOUBLE_EQ(config.capacity_utilization, 0.6);
}

TEST(Target, PaperTargetValue) {
  EXPECT_DOUBLE_EQ(ReliabilityTarget::paper().events_per_pb_year, 2e-3);
  EXPECT_TRUE(ReliabilityTarget::paper().met_by(1e-4));
  EXPECT_FALSE(ReliabilityTarget::paper().met_by(1e-2));
}

TEST(Analyzer, GeneralFaultToleranceBeyondThreeWorksForNir) {
  // The recursive construction supports arbitrary k; FT4 on a bigger
  // redundancy set should beat FT3.
  SystemConfig c = SystemConfig::baseline();
  c.redundancy_set_size = 10;
  const Analyzer analyzer(c);
  const double ft3 = analyzer.events_per_pb_year({InternalScheme::kNone, 3});
  const double ft4 = analyzer.events_per_pb_year({InternalScheme::kNone, 4});
  EXPECT_LT(ft4, ft3);
}

TEST(Analyzer, TryAnalyzeMatchesAnalyzeBitwiseOnTheBaseline) {
  const Analyzer analyzer(SystemConfig::baseline());
  const Configuration config{InternalScheme::kRaid5, 2};
  const auto outcome = analyzer.try_analyze(config);
  ASSERT_TRUE(outcome.has_value()) << outcome.error().message();
  const AnalysisResult direct = analyzer.analyze(config);
  EXPECT_EQ(outcome.value().mttdl.value(), direct.mttdl.value());
  EXPECT_EQ(outcome.value().events_per_pb_year, direct.events_per_pb_year);
}

TEST(Analyzer, TryAnalyzeReportsOutOfRangeFaultToleranceAsInvalidParameter) {
  // The no-throw twin of RejectsFaultToleranceAtOrAboveR: the same caller
  // mistakes surface as typed errors instead of contract violations.
  const Analyzer analyzer(SystemConfig::baseline());
  for (const int ft : {0, 8, 9}) {
    const auto outcome = analyzer.try_analyze({InternalScheme::kNone, ft});
    ASSERT_FALSE(outcome.has_value()) << "ft=" << ft;
    EXPECT_EQ(outcome.error().code, ErrorCode::kInvalidParameter);
    EXPECT_EQ(outcome.error().layer, "core.analyzer");
  }
}

TEST(Analyzer, TryAnalyzeRejectsFaultToleranceAboveTheNirCap) {
  // Without internal RAID the chain has 2^(k+1) states; the analyzer
  // refuses k > 16 with a typed error instead of letting the model
  // constructor trip a contract violation deep in the solve stack. A
  // larger redundancy set keeps the ft < R check out of the way.
  SystemConfig c = SystemConfig::baseline();
  c.redundancy_set_size = 32;
  const Analyzer analyzer(c);
  const auto outcome = analyzer.try_analyze({InternalScheme::kNone, 17});
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::kInvalidParameter);
  EXPECT_EQ(outcome.error().layer, "core.analyzer");
  EXPECT_NE(outcome.error().detail.find("above 16"), std::string::npos)
      << outcome.error().detail;
  // Below the cap but above the dense 4096-state ceiling (k = 12 is an
  // 8191-state chain) the analyzer accepts and the sparse path solves.
  // k = 16 itself also solves but chain assembly makes it a multi-minute
  // test; the model-level cap-boundary test covers it on the recursive
  // matrix route.
  const auto above_dense = analyzer.try_analyze({InternalScheme::kNone, 12});
  EXPECT_TRUE(above_dense.has_value()) << above_dense.error().message();
}

TEST(Analyzer, TryAnalyzeFlagsDegenerateSweepEndpointsWithoutThrowing) {
  // A drive MTTF of 1e-308 hours passes basic validation (it is positive
  // and finite) but produces failure rates so large that the absorbing
  // chain degenerates. The solve must come back as a typed error, never
  // an uncaught exception, and the throwing form must raise the same
  // error as an ErrorException.
  SystemConfig c = SystemConfig::baseline();
  ASSERT_TRUE(set_parameter(c, "drive-mttf", 1e-308));
  const Analyzer analyzer(c);
  const Configuration config{InternalScheme::kRaid5, 2};
  const auto outcome = analyzer.try_analyze(config);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::kSingularGenerator);
  try {
    (void)analyzer.analyze(config);
    FAIL() << "analyze() must throw on a degenerate chain";
  } catch (const ErrorException& e) {
    EXPECT_EQ(e.error().code, outcome.error().code);
    EXPECT_EQ(e.error().detail, outcome.error().detail);
  }
}

TEST(SolveCache, CachesErrorsLikeValues) {
  SolveCache cache;
  EXPECT_FALSE(cache.lookup("k").has_value());  // miss
  cache.store("k", Error{ErrorCode::kSingularGenerator, "test", "boom"});
  const auto hit = cache.lookup("k");
  ASSERT_TRUE(hit.has_value());
  ASSERT_FALSE(hit->has_value());
  EXPECT_EQ(hit->error().code, ErrorCode::kSingularGenerator);
  EXPECT_EQ(hit->error().detail, "boom");
  // A later store of the same key keeps the first entry.
  cache.store("k", Expected<double>{1.0});
  ASSERT_FALSE(cache.lookup("k")->has_value());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, ReplaysCachedErrorsAcrossAnalyses) {
  // A shared cache must replay a failed solve on the second analysis
  // instead of re-running it: same typed error, one more hit, no new
  // miss.
  SystemConfig c = SystemConfig::baseline();
  ASSERT_TRUE(set_parameter(c, "drive-mttf", 1e-308));
  const Analyzer analyzer(c);
  const Configuration config{InternalScheme::kNone, 2};
  SolveCache cache;
  const auto first = analyzer.try_analyze(config, Method::kExactChain, &cache);
  ASSERT_FALSE(first.has_value());
  const auto after_first = cache.stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, 1u);
  const auto second = analyzer.try_analyze(config, Method::kExactChain, &cache);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, first.error().code);
  EXPECT_EQ(second.error().layer, first.error().layer);
  EXPECT_EQ(second.error().detail, first.error().detail);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

}  // namespace
}  // namespace nsrel::core
