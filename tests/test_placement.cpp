// Tests for placement: even distribution, critical-stripe counting against
// the combinatorial fractions, redundancy-set enumeration, and the
// fail-in-place spare ledger.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "combinat/critical_sets.hpp"
#include "placement/layout.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::placement {
namespace {

TEST(RotatingPlacement, StripeNodesAreDistinctAndInRange) {
  const RotatingPlacement layout({64, 8});
  for (std::uint64_t s = 0; s < 200; ++s) {
    const auto nodes = layout.nodes_for_stripe(s);
    ASSERT_EQ(nodes.size(), 8u);
    std::vector<bool> seen(64, false);
    for (const int n : nodes) {
      ASSERT_GE(n, 0);
      ASSERT_LT(n, 64);
      EXPECT_FALSE(seen[static_cast<std::size_t>(n)]) << "stripe " << s;
      seen[static_cast<std::size_t>(n)] = true;
    }
  }
}

TEST(RotatingPlacement, StripeUsesNodeAgreesWithEnumeration) {
  const RotatingPlacement layout({10, 4});
  for (std::uint64_t s = 0; s < 30; ++s) {
    const auto nodes = layout.nodes_for_stripe(s);
    for (int n = 0; n < 10; ++n) {
      const bool listed =
          std::find(nodes.begin(), nodes.end(), n) != nodes.end();
      EXPECT_EQ(layout.stripe_uses_node(s, n), listed)
          << "s=" << s << " n=" << n;
    }
  }
}

TEST(RotatingPlacement, EvenParticipationOverFullWindow) {
  // Over N consecutive stripes each node appears exactly R times: the even
  // distribution assumption of section 4.1.
  const RotatingPlacement layout({64, 8});
  const auto counts = layout.participation(64);
  for (const auto c : counts) EXPECT_EQ(c, 8u);
}

TEST(RotatingPlacement, CriticalFractionMatchesCombinatoricsForAdjacent) {
  // With rotation, the fraction of one failed node's stripes that are
  // critical depends on the failed nodes' separation; adjacent nodes share
  // R-1 of each's R stripes. This validates stripe_uses_node's geometry.
  const int n = 16;
  const int r = 4;
  const RotatingPlacement layout({n, r});
  const auto window = static_cast<std::uint64_t>(n);
  // Node 0 participates in r stripes; adjacent failed pair {0, 1} shares
  // r-1 stripes.
  EXPECT_EQ(layout.critical_stripes(window, {0}), static_cast<std::uint64_t>(r));
  EXPECT_EQ(layout.critical_stripes(window, {0, 1}),
            static_cast<std::uint64_t>(r - 1));
  // A pair farther apart than r shares nothing.
  EXPECT_EQ(layout.critical_stripes(window, {0, 8}), 0u);
}

TEST(EnumerateRedundancySets, CountMatchesBinomial) {
  const auto sets = enumerate_redundancy_sets(10, 4);
  EXPECT_EQ(sets.size(), static_cast<std::size_t>(binomial(10, 4)));
  // Every set sorted, distinct, in range.
  for (const auto& set : sets) {
    ASSERT_EQ(set.size(), 4u);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_GE(set.front(), 0);
    EXPECT_LT(set.back(), 10);
  }
}

TEST(EnumerateRedundancySets, PerNodeParticipationMatchesSection41) {
  // Each node is part of C(N-1, R-1) redundancy sets.
  const int n = 9;
  const int r = 3;
  const auto sets = enumerate_redundancy_sets(n, r);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (const auto& set : sets) {
    for (const int node : set) ++counts[static_cast<std::size_t>(node)];
  }
  for (const int c : counts) {
    EXPECT_EQ(c, static_cast<int>(binomial(n - 1, r - 1)));
  }
}

TEST(EnumerateRedundancySets, GuardsAgainstCombinatorialExplosion) {
  EXPECT_THROW((void)enumerate_redundancy_sets(64, 8), ContractViolation);
}

TEST(SpareLedger, InitialStateMatchesInputs) {
  const SpareLedger ledger(64, 3.6e12, 0.75);  // 12 x 300 GB per node
  EXPECT_EQ(ledger.surviving_nodes(), 64);
  EXPECT_DOUBLE_EQ(ledger.utilization(), 0.75);
  EXPECT_DOUBLE_EQ(ledger.spare_bytes(), 64.0 * 3.6e12 * 0.25);
}

TEST(SpareLedger, FailureRaisesUtilization) {
  SpareLedger ledger(64, 3.6e12, 0.75);
  ledger.fail_node();
  EXPECT_EQ(ledger.surviving_nodes(), 63);
  EXPECT_NEAR(ledger.utilization(), 0.75 * 64.0 / 63.0, 1e-12);
}

TEST(SpareLedger, AbsorbableFailureCount) {
  // 75% utilization: data needs ceil(0.75*64)=48 nodes; 16 failures OK.
  SpareLedger ledger(64, 1.0, 0.75);
  EXPECT_EQ(ledger.failures_absorbable(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(ledger.can_absorb_failure()) << i;
    ledger.fail_node();
  }
  EXPECT_FALSE(ledger.can_absorb_failure());
  EXPECT_EQ(ledger.failures_absorbable(), 0);
  EXPECT_THROW(ledger.fail_node(), ContractViolation);
}

TEST(SpareLedger, FullUtilizationAbsorbsNothing) {
  const SpareLedger ledger(10, 1.0, 1.0);
  EXPECT_FALSE(ledger.can_absorb_failure());
  EXPECT_EQ(ledger.failures_absorbable(), 0);
}

ProvisioningPlanner::Params baseline_provisioning() {
  return ProvisioningPlanner::Params{};  // 64 nodes, 5-year life
}

TEST(Provisioning, ExpectedLossMatchesHandComputation) {
  const ProvisioningPlanner planner(baseline_provisioning());
  // 64 * 43830h/400kh node-equivalents + 768 * 43830/300k / 12.
  const double life = 5.0 * 24.0 * 365.25;
  const double expected =
      64.0 * life / 400'000.0 + 768.0 * life / 300'000.0 / 12.0;
  EXPECT_NEAR(planner.expected_node_equivalents_lost(), expected,
              1e-9 * expected);
  // ~16.4 node-equivalents over 5 years at baseline.
  EXPECT_NEAR(planner.expected_node_equivalents_lost(), 16.4, 0.5);
}

TEST(Provisioning, SurvivalProbabilityIsMonotoneCdf) {
  const ProvisioningPlanner planner(baseline_provisioning());
  double previous = 0.0;
  for (int spares = 0; spares <= 40; spares += 5) {
    const double p = planner.survival_probability(spares);
    EXPECT_GE(p, previous);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
  EXPECT_LT(planner.survival_probability(10), 0.1);  // well below the mean
  EXPECT_GT(planner.survival_probability(30), 0.99);
}

TEST(Provisioning, SparesNeededBracketsTheMean) {
  const ProvisioningPlanner planner(baseline_provisioning());
  const int spares = planner.spares_needed(0.95);
  // A 95% target needs the mean (~16.4) plus ~1.65 sigma (~6.7).
  EXPECT_GE(spares, 17);
  EXPECT_LE(spares, 26);
  EXPECT_GE(planner.survival_probability(spares), 0.95);
  EXPECT_LT(planner.survival_probability(spares - 1), 0.95);
}

TEST(Provisioning, PaperUtilizationIsRoughlyAFiveYearBudget) {
  // The paper's 75% utilization leaves 16 spare nodes of 64 — right at
  // the expected 5-year loss, i.e. ~50% confidence without re-sparing.
  const ProvisioningPlanner planner(baseline_provisioning());
  const double util_95 = planner.max_initial_utilization(0.95);
  const double util_50 = planner.max_initial_utilization(0.50);
  EXPECT_LT(util_95, 0.75);
  EXPECT_NEAR(util_50, 0.75, 0.03);
}

TEST(Provisioning, BetterHardwareAllowsHigherUtilization) {
  ProvisioningPlanner::Params good = baseline_provisioning();
  good.node_failures_per_hour = 1.0 / 1'000'000.0;
  good.drive_failures_per_hour = 1.0 / 750'000.0;
  const ProvisioningPlanner better{good};
  const ProvisioningPlanner base{baseline_provisioning()};
  EXPECT_GT(better.max_initial_utilization(0.95),
            base.max_initial_utilization(0.95));
}

TEST(Provisioning, ValidatesInputs) {
  ProvisioningPlanner::Params bad = baseline_provisioning();
  bad.service_life_hours = 0.0;
  EXPECT_THROW(ProvisioningPlanner{bad}, ContractViolation);
  const ProvisioningPlanner planner(baseline_provisioning());
  EXPECT_THROW((void)planner.spares_needed(0.0), ContractViolation);
  EXPECT_THROW((void)planner.spares_needed(1.0), ContractViolation);
  EXPECT_THROW((void)planner.survival_probability(-1), ContractViolation);
}

TEST(SpareLedger, RejectsInvalidInputs) {
  EXPECT_THROW(SpareLedger(1, 1.0, 0.5), ContractViolation);
  EXPECT_THROW(SpareLedger(4, 0.0, 0.5), ContractViolation);
  EXPECT_THROW(SpareLedger(4, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(SpareLedger(4, 1.0, 1.5), ContractViolation);
}

}  // namespace
}  // namespace nsrel::placement
