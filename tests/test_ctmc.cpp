// Tests for the CTMC substrate: chain construction, absorbing analysis
// (against closed forms for small chains), transient uniformization
// (against analytic exponentials), and the stationary solver.
#include <cstddef>
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ctmc/absorbing.hpp"
#include "ctmc/chain.hpp"
#include "ctmc/elimination.hpp"
#include "ctmc/stationary.hpp"
#include "ctmc/transient.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {
namespace {

/// Single transient state with exit rate lambda: MTTA = 1/lambda,
/// stddev = 1/lambda (exponential distribution).
Chain single_exponential(double lambda) {
  Chain c;
  const StateId up = c.add_state("up");
  const StateId down = c.add_state("down", StateKind::kAbsorbing);
  c.add_transition(up, down, lambda);
  return c;
}

/// Two-state birth-death with repair: the classic M/M repairable pair.
Chain repairable_pair(double lambda, double mu) {
  Chain c;
  const StateId s0 = c.add_state("ok");
  const StateId s1 = c.add_state("degraded");
  const StateId s2 = c.add_state("failed", StateKind::kAbsorbing);
  c.add_transition(s0, s1, 2.0 * lambda);
  c.add_transition(s1, s0, mu);
  c.add_transition(s1, s2, lambda);
  return c;
}

TEST(Chain, StateAndTransitionBookkeeping) {
  Chain c;
  const StateId a = c.add_state("a");
  const StateId b = c.add_state("b", StateKind::kAbsorbing);
  c.add_transition(a, b, 1.5);
  EXPECT_EQ(c.state_count(), 2u);
  EXPECT_EQ(c.transient_count(), 1u);
  EXPECT_EQ(c.absorbing_count(), 1u);
  EXPECT_EQ(c.find_state("a"), a);
  EXPECT_EQ(c.find_state("b"), b);
  EXPECT_DOUBLE_EQ(c.exit_rate(a), 1.5);
  EXPECT_DOUBLE_EQ(c.exit_rate(b), 0.0);
}

TEST(Chain, ParallelTransitionsAccumulate) {
  Chain c;
  const StateId a = c.add_state("a");
  const StateId b = c.add_state("b", StateKind::kAbsorbing);
  c.add_transition(a, b, 1.0);
  c.add_transition(a, b, 2.0);
  EXPECT_EQ(c.transitions().size(), 1u);
  EXPECT_DOUBLE_EQ(c.exit_rate(a), 3.0);
}

TEST(Chain, RejectsInvalidTransitions) {
  Chain c;
  const StateId a = c.add_state("a");
  const StateId b = c.add_state("b", StateKind::kAbsorbing);
  EXPECT_THROW(c.add_transition(a, b, 0.0), ContractViolation);
  EXPECT_THROW(c.add_transition(a, b, -1.0), ContractViolation);
  EXPECT_THROW(c.add_transition(a, a, 1.0), ContractViolation);
  EXPECT_THROW(c.add_transition(b, a, 1.0), ContractViolation);  // absorbing
  EXPECT_THROW(c.add_transition(a, 99, 1.0), ContractViolation);
}

TEST(Chain, FindStateThrowsOnMissingOrDuplicate) {
  Chain c;
  c.add_state("x");
  c.add_state("x");
  EXPECT_THROW((void)c.find_state("missing"), ContractViolation);
  EXPECT_THROW((void)c.find_state("x"), ContractViolation);
}

TEST(Chain, GeneratorRowsSumToZero) {
  const Chain c = repairable_pair(0.1, 5.0);
  const auto q = c.generator();
  for (std::size_t i = 0; i < q.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < q.cols(); ++j) sum += q(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-15);
  }
}

TEST(Chain, TransientGeneratorDiagonalIncludesAbsorbingOutflow) {
  const Chain c = repairable_pair(0.1, 5.0);
  const auto qb = c.transient_generator();
  ASSERT_EQ(qb.rows(), 2u);
  EXPECT_DOUBLE_EQ(qb(0, 0), -0.2);
  EXPECT_DOUBLE_EQ(qb(1, 1), -(5.0 + 0.1));  // repair + absorbing outflow
}

TEST(Chain, AbsorptionMatrixIsNegatedTransientGenerator) {
  const Chain c = repairable_pair(0.2, 3.0);
  const auto r = c.absorption_matrix();
  const auto qb = c.transient_generator();
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < r.cols(); ++j) {
      EXPECT_DOUBLE_EQ(r(i, j), -qb(i, j));
    }
  }
  EXPECT_GT(r(0, 0), 0.0);
  EXPECT_LE(r(0, 1), 0.0);
}

TEST(Chain, ValidateDetectsUnreachableAbsorption) {
  Chain c;
  const StateId a = c.add_state("a");
  const StateId trap = c.add_state("trap");
  c.add_state("loss", StateKind::kAbsorbing);
  c.add_transition(a, trap, 1.0);
  c.add_transition(trap, a, 1.0);
  EXPECT_FALSE(c.validate().empty());
}

TEST(Chain, ValidateDetectsMissingStateKinds) {
  Chain only_absorbing;
  only_absorbing.add_state("a", StateKind::kAbsorbing);
  EXPECT_FALSE(only_absorbing.validate().empty());

  Chain only_transient;
  only_transient.add_state("t");
  EXPECT_FALSE(only_transient.validate().empty());
}

TEST(Absorbing, SingleExponentialMttaAndStddev) {
  const double lambda = 0.25;
  const Chain c = single_exponential(lambda);
  const auto analysis = AbsorbingSolver::analyze(c);
  EXPECT_NEAR(analysis.mean_time_to_absorption_hours, 1.0 / lambda, 1e-12);
  // Exponential: stddev == mean.
  EXPECT_NEAR(analysis.stddev_time_to_absorption_hours, 1.0 / lambda, 1e-9);
  ASSERT_EQ(analysis.absorption_probability.size(), 1u);
  EXPECT_NEAR(analysis.absorption_probability[0], 1.0, 1e-12);
}

TEST(Absorbing, RepairablePairMatchesClosedForm) {
  // MTTDL for the 3-state chain: ((3)lambda + mu) / (2 lambda^2)
  // with failure rates 2*lambda then lambda and repair mu.
  const double lambda = 0.01;
  const double mu = 10.0;
  const Chain c = repairable_pair(lambda, mu);
  const double mttdl = AbsorbingSolver::mttdl_hours(c);
  const double expected =
      (3.0 * lambda + mu) / (2.0 * lambda * lambda);
  EXPECT_NEAR(mttdl, expected, 1e-9 * expected);
}

TEST(Absorbing, OccupancySumsToMtta) {
  const Chain c = repairable_pair(0.05, 2.0);
  const auto analysis = AbsorbingSolver::analyze(c);
  double sum = 0.0;
  for (const double tau : analysis.occupancy_hours) sum += tau;
  EXPECT_NEAR(sum, analysis.mean_time_to_absorption_hours, 1e-12 * sum);
}

TEST(Absorbing, CompetingAbsorbingStatesSplitProportionally) {
  Chain c;
  const StateId s = c.add_state("s");
  const StateId a = c.add_state("a", StateKind::kAbsorbing);
  const StateId b = c.add_state("b", StateKind::kAbsorbing);
  c.add_transition(s, a, 3.0);
  c.add_transition(s, b, 1.0);
  const auto analysis = AbsorbingSolver::analyze(c);
  ASSERT_EQ(analysis.absorption_probability.size(), 2u);
  EXPECT_NEAR(analysis.absorption_probability[0], 0.75, 1e-12);
  EXPECT_NEAR(analysis.absorption_probability[1], 0.25, 1e-12);
  EXPECT_NEAR(analysis.mean_time_to_absorption_hours, 0.25, 1e-12);
}

TEST(Absorbing, InitialDistributionWeighting) {
  Chain c;
  const StateId fast = c.add_state("fast");
  const StateId slow = c.add_state("slow");
  const StateId done = c.add_state("done", StateKind::kAbsorbing);
  c.add_transition(fast, done, 10.0);
  c.add_transition(slow, done, 1.0);
  const auto analysis =
      AbsorbingSolver::analyze_distribution(c, {0.5, 0.5});
  EXPECT_NEAR(analysis.mean_time_to_absorption_hours, 0.5 * 0.1 + 0.5 * 1.0,
              1e-12);
}

TEST(Absorbing, RejectsAbsorbingInitialState) {
  const Chain c = single_exponential(1.0);
  EXPECT_THROW((void)AbsorbingSolver::analyze(c, 1), ContractViolation);
}

TEST(Absorbing, RejectsUnnormalizedDistribution) {
  const Chain c = single_exponential(1.0);
  EXPECT_THROW((void)AbsorbingSolver::analyze_distribution(c, {0.5}),
               ContractViolation);
}

TEST(Transient, SurvivalMatchesAnalyticExponential) {
  const double lambda = 0.5;
  const Chain c = single_exponential(lambda);
  const TransientSolver solver(c);
  for (const double t : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(solver.survival(t), std::exp(-lambda * t), 1e-9) << "t=" << t;
  }
}

TEST(Transient, DistributionSumsToOne) {
  const Chain c = repairable_pair(0.3, 2.0);
  const TransientSolver solver(c);
  for (const double t : {0.1, 1.0, 10.0, 100.0}) {
    const auto dist = solver.distribution_at(t);
    double sum = 0.0;
    for (const double p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(Transient, SurvivalIsMonotoneNonIncreasing) {
  const Chain c = repairable_pair(0.3, 2.0);
  const TransientSolver solver(c);
  const auto curve = solver.survival_curve({0.0, 1.0, 5.0, 20.0, 100.0});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
  }
  EXPECT_NEAR(curve.front(), 1.0, 1e-12);
}

TEST(Transient, IntegratedSurvivalApproximatesMtta) {
  // MTTA == integral of the survival function; trapezoid over a fine grid
  // should land within a fraction of a percent.
  const Chain c = repairable_pair(0.5, 2.0);
  const double mtta = AbsorbingSolver::mttdl_hours(c);
  const TransientSolver solver(c);
  const double horizon = mtta * 12.0;
  const int steps = 3000;
  double integral = 0.0;
  double prev = solver.survival(0.0);
  for (int i = 1; i <= steps; ++i) {
    const double t = horizon * i / steps;
    const double current = solver.survival(t);
    integral += 0.5 * (prev + current) * (horizon / steps);
    prev = current;
  }
  EXPECT_NEAR(integral, mtta, 0.01 * mtta);
}

TEST(Elimination, MatchesLuOnSimpleChains) {
  const Chain single = single_exponential(0.25);
  EXPECT_NEAR(EliminationSolver::mean_absorption_time_hours(single, 0), 4.0,
              1e-12);
  const Chain pair = repairable_pair(0.01, 10.0);
  const double via_lu =
      AbsorbingSolver::analyze(pair).mean_time_to_absorption_hours;
  const double via_elimination =
      EliminationSolver::mean_absorption_time_hours(pair, 0);
  EXPECT_NEAR(via_elimination, via_lu, 1e-10 * via_lu);
}

TEST(Elimination, MatrixOverloadMatchesChainOverload) {
  const Chain c = repairable_pair(0.05, 3.0);
  const double via_chain = EliminationSolver::mean_absorption_time_hours(c, 0);
  const double via_matrix = EliminationSolver::mean_absorption_time_hours(
      c.absorption_matrix(), 0);
  EXPECT_NEAR(via_matrix, via_chain, 1e-12 * via_chain);
}

TEST(Elimination, SurvivesExtremeConditioning) {
  // A 3-state chain with MTTDL ~ mu^2/lambda^3 ~ 1e27: far beyond what LU
  // on the absorption matrix can resolve in doubles. Elimination must
  // still match the birth-death closed form
  //   MTTDL ~= mu^2 / (2*lambda^3) for 0->1->2->loss at rates
  //   2L, L(1-0), L with repair mu (leading order).
  Chain c;
  const StateId s0 = c.add_state("0");
  const StateId s1 = c.add_state("1");
  const StateId s2 = c.add_state("2");
  const StateId loss = c.add_state("loss", StateKind::kAbsorbing);
  const double lambda = 1e-9;
  const double mu = 1.0;
  c.add_transition(s0, s1, 3.0 * lambda);
  c.add_transition(s1, s2, 2.0 * lambda);
  c.add_transition(s2, loss, lambda);
  c.add_transition(s1, s0, mu);
  c.add_transition(s2, s1, mu);
  const double mttdl = EliminationSolver::mean_absorption_time_hours(c, s0);
  const double expected = mu * mu / (6.0 * lambda * lambda * lambda);
  EXPECT_GT(mttdl, 0.0);
  EXPECT_NEAR(mttdl, expected, 1e-6 * expected);
}

TEST(Elimination, ValidatesInputs) {
  const Chain c = single_exponential(1.0);
  EXPECT_THROW((void)EliminationSolver::mean_absorption_time_hours(c, 1),
               ContractViolation);
  linalg::Matrix bad_diag{{-1.0}};
  EXPECT_THROW(
      (void)EliminationSolver::mean_absorption_time_hours(bad_diag, 0),
      ContractViolation);
}

TEST(Stationary, TwoStateFlowBalance) {
  Chain c;
  const StateId up = c.add_state("up");
  const StateId down = c.add_state("down");
  c.add_transition(up, down, 1.0);
  c.add_transition(down, up, 4.0);
  const auto pi = StationarySolver::distribution(c);
  EXPECT_NEAR(pi[up], 0.8, 1e-12);
  EXPECT_NEAR(pi[down], 0.2, 1e-12);
  EXPECT_NEAR(StationarySolver::occupancy(c, {up}), 0.8, 1e-12);
}

TEST(Stationary, BirthDeathMatchesDetailedBalance) {
  // 3-state birth-death: pi_i proportional to prod(lambda/mu).
  Chain c;
  const StateId s0 = c.add_state("0");
  const StateId s1 = c.add_state("1");
  const StateId s2 = c.add_state("2");
  const double lambda = 2.0;
  const double mu = 5.0;
  c.add_transition(s0, s1, lambda);
  c.add_transition(s1, s2, lambda);
  c.add_transition(s1, s0, mu);
  c.add_transition(s2, s1, mu);
  const auto pi = StationarySolver::distribution(c);
  const double rho = lambda / mu;
  const double z = 1.0 + rho + rho * rho;
  EXPECT_NEAR(pi[s0], 1.0 / z, 1e-12);
  EXPECT_NEAR(pi[s1], rho / z, 1e-12);
  EXPECT_NEAR(pi[s2], rho * rho / z, 1e-12);
}

TEST(Stationary, RejectsAbsorbingStates) {
  const Chain c = single_exponential(1.0);
  EXPECT_THROW((void)StationarySolver::distribution(c), ContractViolation);
}

// ---------------------------------------------------------------------
// Typed-error (try_) forms: numerical failures come back as Error
// values with stable codes, and the throwing forms wrap exactly them.

TEST(Stationary, TryDistributionFlagsReducibleChainAsSingular) {
  // Two disconnected recurrent components: the stationary distribution
  // is not unique, so the (normalized) linear system is singular.
  Chain c;
  const StateId a = c.add_state("a");
  const StateId b = c.add_state("b");
  const StateId x = c.add_state("x");
  const StateId y = c.add_state("y");
  c.add_transition(a, b, 1.0);
  c.add_transition(b, a, 1.0);
  c.add_transition(x, y, 1.0);
  c.add_transition(y, x, 1.0);
  const auto result = StationarySolver::try_distribution(c);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kSingularGenerator);
  EXPECT_EQ(result.error().layer, "ctmc.stationary");
  // The throwing form surfaces the same typed error as an exception.
  EXPECT_THROW((void)StationarySolver::distribution(c), ErrorException);
}

TEST(Stationary, TryDistributionMatchesThrowingFormOnHealthyChains) {
  Chain c;
  const StateId up = c.add_state("up");
  const StateId down = c.add_state("down");
  c.add_transition(up, down, 1.0);
  c.add_transition(down, up, 4.0);
  const auto result = StationarySolver::try_distribution(c);
  ASSERT_TRUE(result.has_value());
  const auto direct = StationarySolver::distribution(c);
  ASSERT_EQ(result.value().size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(result.value()[i], direct[i]);
  }
}

TEST(Absorbing, TryAnalyzeEnforcesTheRcondGuard) {
  // The repairable pair is perfectly well conditioned, so the default
  // guard passes; an artificially strict threshold trips the typed
  // ill_conditioned error without touching exception paths.
  const Chain c = repairable_pair(1e-4, 1.0);
  const auto healthy = AbsorbingSolver::try_analyze(c, 0);
  ASSERT_TRUE(healthy.has_value());
  EXPECT_EQ(healthy.value().mean_time_to_absorption_hours,
            AbsorbingSolver::analyze(c, 0).mean_time_to_absorption_hours);

  NumericalGuards strict;
  strict.min_rcond = 1.0;  // nothing short of the identity passes
  const auto flagged = AbsorbingSolver::try_analyze(c, 0, strict);
  ASSERT_FALSE(flagged.has_value());
  EXPECT_EQ(flagged.error().code, ErrorCode::kIllConditioned);
  EXPECT_EQ(flagged.error().layer, "ctmc.absorbing");
  // The detail names both the estimate and the threshold it missed.
  EXPECT_NE(flagged.error().detail.find("rcond"), std::string::npos);
  EXPECT_NE(flagged.error().detail.find("threshold"), std::string::npos);
}

TEST(Absorbing, TryAnalyzeKeepsPreconditionsAsContracts) {
  // Caller bugs stay ContractViolation even on the try_ path: typed
  // errors are reserved for data-dependent numerical failures.
  const Chain c = single_exponential(1.0);
  EXPECT_THROW((void)AbsorbingSolver::try_analyze(c, 1), ContractViolation);
  EXPECT_THROW(
      (void)AbsorbingSolver::try_analyze_distribution(c, {0.5, 0.2}),
      ContractViolation);
}

TEST(Elimination, TryFormMatchesThrowingFormBitwise) {
  const Chain c = repairable_pair(1e-3, 10.0);
  const auto result = EliminationSolver::try_mean_absorption_time_hours(c, 0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(),
            EliminationSolver::mean_absorption_time_hours(c, 0));
}

TEST(ErrorTaxonomy, CodesHaveStableNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kSingularGenerator),
               "singular_generator");
  EXPECT_STREQ(error_code_name(ErrorCode::kIllConditioned),
               "ill_conditioned");
  EXPECT_STREQ(error_code_name(ErrorCode::kNonFiniteResult),
               "non_finite_result");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidParameter),
               "invalid_parameter");
  EXPECT_STREQ(error_code_name(ErrorCode::kContractViolation),
               "contract_violation");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
  const Error e{ErrorCode::kNonFiniteResult, "ctmc.absorbing", "mean <= 0"};
  EXPECT_EQ(e.message(), "ctmc.absorbing: non_finite_result: mean <= 0");
  EXPECT_STREQ(ErrorException(e).what(), e.message().c_str());
}

TEST(Transient, ZeroRateChainStaysAtInitialDistribution) {
  // Every state absorbing: all generator rows are zero, the uniformized
  // kernel is the identity, and pi(t) = pi(0) for every t.
  Chain c;
  c.add_state("a0", StateKind::kAbsorbing);
  c.add_state("a1", StateKind::kAbsorbing);
  const TransientSolver solver(c);
  EXPECT_DOUBLE_EQ(solver.uniformization_rate(), 1.0);  // the 0 fallback
  const auto dist = solver.try_distribution_at(1e6, 1);
  ASSERT_TRUE(dist.has_value());
  // The Poisson expansion truncates at 1 - tol mass, so "stays put" is
  // exact on the zero state and tolerance-accurate on the occupied one.
  EXPECT_DOUBLE_EQ(dist.value()[0], 0.0);
  EXPECT_NEAR(dist.value()[1], 1.0, 1e-6);
}

TEST(Transient, SingleStateChainIsAFixedPoint) {
  Chain c;
  c.add_state("only", StateKind::kAbsorbing);
  const TransientSolver solver(c);
  const auto dist = solver.try_distribution_at(42.0, 0);
  ASSERT_TRUE(dist.has_value());
  EXPECT_NEAR(dist.value()[0], 1.0, 1e-9);
  const auto survival = solver.try_survival(42.0, 0);
  ASSERT_TRUE(survival.has_value());
  EXPECT_DOUBLE_EQ(survival.value(), 0.0);  // no transient states
}

TEST(Transient, NonFiniteHorizonIsATypedError) {
  // Lambda * t overflows: the Poisson expansion cannot run, and the
  // failure must come back typed instead of producing garbage.
  const Chain c = single_exponential(1e9);
  const TransientSolver solver(c);
  const auto dist = solver.try_distribution_at(1e308, 0);
  ASSERT_FALSE(dist.has_value());
  EXPECT_EQ(dist.error().code, ErrorCode::kInvalidParameter);
  EXPECT_EQ(dist.error().layer, "ctmc.transient");
  const auto survival = solver.try_survival(1e308, 0);
  ASSERT_FALSE(survival.has_value());
  EXPECT_EQ(survival.error().code, ErrorCode::kInvalidParameter);
  // The throwing form surfaces the same error as an exception.
  EXPECT_THROW((void)solver.distribution_at(1e308, 0), ErrorException);
}

TEST(Transient, TryFormMatchesThrowingFormOnHealthyChains) {
  const Chain c = repairable_pair(0.3, 2.0);
  const TransientSolver solver(c);
  const auto dist = solver.try_distribution_at(5.0, 0);
  ASSERT_TRUE(dist.has_value());
  const auto direct = solver.distribution_at(5.0, 0);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist.value()[i], direct[i]);
  }
}

}  // namespace
}  // namespace nsrel::ctmc
