// Tests for the RDP code: parity definitions, exhaustive single/double
// erasure recovery across primes, and cross-checks against EVENODD on the
// shared row-parity component.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "erasure/evenodd.hpp"
#include "erasure/rdp.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nsrel::erasure {
namespace {

std::vector<Shard> random_columns(int count, std::size_t size,
                                  Xoshiro256& rng) {
  std::vector<Shard> columns(static_cast<std::size_t>(count), Shard(size));
  for (auto& column : columns) {
    for (auto& byte : column) byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return columns;
}

TEST(Rdp, ShapeAndConstruction) {
  const RdpCode code(5);
  EXPECT_EQ(code.data_columns(), 4);
  EXPECT_EQ(code.total_columns(), 6);
  EXPECT_EQ(code.rows(), 4);
  EXPECT_THROW(RdpCode(6), ContractViolation);
  EXPECT_THROW(RdpCode(2), ContractViolation);
}

TEST(Rdp, RowParityMatchesDefinition) {
  Xoshiro256 rng(31);
  const int p = 5;
  const RdpCode code(p);
  const std::size_t cell = 8;
  const auto data =
      random_columns(p - 1, static_cast<std::size_t>(p - 1) * cell, rng);
  const auto parity = code.encode(data);
  ASSERT_EQ(parity.size(), 2u);
  for (std::size_t i = 0; i < static_cast<std::size_t>(p - 1) * cell; ++i) {
    std::uint8_t expected = 0;
    for (const auto& column : data) expected ^= column[i];
    EXPECT_EQ(parity[0][i], expected);
  }
}

TEST(Rdp, DiagonalParityCoversRowParityColumn) {
  // With 1-byte cells, verify Q[d] against the definition including P.
  Xoshiro256 rng(32);
  const int p = 5;
  const RdpCode code(p);
  const auto data =
      random_columns(p - 1, static_cast<std::size_t>(p - 1), rng);
  const auto parity = code.encode(data);
  for (int d = 0; d < p - 1; ++d) {
    std::uint8_t expected = 0;
    for (int j = 0; j < p; ++j) {
      const int i = (d + p - j) % p;
      if (i >= p - 1) continue;
      const Shard& column =
          j < p - 1 ? data[static_cast<std::size_t>(j)] : parity[0];
      expected ^= column[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(parity[1][static_cast<std::size_t>(d)], expected) << "d=" << d;
  }
}

class RdpExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(RdpExhaustive, EverySingleAndDoubleErasureRecovers) {
  const int p = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(100 + p));
  const RdpCode code(p);
  const std::size_t cell = 4;
  const auto data =
      random_columns(p - 1, static_cast<std::size_t>(p - 1) * cell, rng);
  auto columns = data;
  auto parity = code.encode(data);
  columns.insert(columns.end(), parity.begin(), parity.end());
  const int total = p + 1;

  const auto check_pattern = [&](const std::vector<int>& erased) {
    std::vector<bool> present(static_cast<std::size_t>(total), true);
    auto damaged = columns;
    for (const int e : erased) {
      present[static_cast<std::size_t>(e)] = false;
      damaged[static_cast<std::size_t>(e)].assign(
          static_cast<std::size_t>(p - 1) * cell, 0xCD);
    }
    const auto rebuilt = code.reconstruct(damaged, present);
    EXPECT_EQ(rebuilt, columns)
        << "p=" << p << " erased={" << (erased.empty() ? -1 : erased[0])
        << "," << (erased.size() > 1 ? erased[1] : -1) << "}";
  };

  check_pattern({});
  for (int a = 0; a < total; ++a) {
    check_pattern({a});
    for (int b = a + 1; b < total; ++b) check_pattern({a, b});
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, RdpExhaustive,
                         ::testing::Values(3, 5, 7, 11, 13));

TEST(Rdp, ThreeErasuresRejected) {
  const RdpCode code(5);
  std::vector<bool> present(6, true);
  present[0] = present[2] = present[5] = false;
  EXPECT_FALSE(code.recoverable(present));
  const std::vector<Shard> columns(6, Shard(16, 0));
  EXPECT_THROW((void)code.reconstruct(columns, present), ContractViolation);
}

TEST(Rdp, RowParityAgreesWithEvenOddOnSameData) {
  // Both codes define P as the XOR of the data row; with EVENODD's extra
  // zero-padded column the two P columns must agree.
  Xoshiro256 rng(33);
  const int p = 5;
  const std::size_t column_size = static_cast<std::size_t>(p - 1) * 4;
  auto rdp_data = random_columns(p - 1, column_size, rng);
  auto evenodd_data = rdp_data;
  evenodd_data.push_back(Shard(column_size, 0));  // pad to p columns
  const auto rdp_parity = RdpCode(p).encode(rdp_data);
  const auto evenodd_parity = EvenOddCode(p).encode(evenodd_data);
  EXPECT_EQ(rdp_parity[0], evenodd_parity[0]);
}

TEST(Rdp, LargeCellsPrime17) {
  Xoshiro256 rng(34);
  const int p = 17;
  const RdpCode code(p);
  const std::size_t cell = 512;
  const auto data =
      random_columns(p - 1, static_cast<std::size_t>(p - 1) * cell, rng);
  auto columns = data;
  auto parity = code.encode(data);
  columns.insert(columns.end(), parity.begin(), parity.end());
  std::vector<bool> present(static_cast<std::size_t>(p + 1), true);
  present[5] = present[16] = false;  // one data + P
  auto damaged = columns;
  damaged[5].assign(damaged[5].size(), 0);
  damaged[16].assign(damaged[16].size(), 0);
  EXPECT_EQ(code.reconstruct(damaged, present), columns);
}

}  // namespace
}  // namespace nsrel::erasure
