// Tests for the critical-redundancy-set combinatorics of section 5.2,
// including cross-checks against exhaustive enumeration via the placement
// module.
#include <cstddef>
#include <gtest/gtest.h>

#include <algorithm>

#include "combinat/critical_sets.hpp"
#include "placement/layout.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::combinat {
namespace {

TEST(CriticalSets, RedundancySetCountMatchesBinomial) {
  EXPECT_DOUBLE_EQ(redundancy_set_count(64, 8), binomial(64, 8));
  EXPECT_DOUBLE_EQ(sets_per_node(64, 8), binomial(63, 7));
}

TEST(CriticalSets, K2MatchesPaperFormula) {
  // k2 = (R-1)/(N-1)
  EXPECT_DOUBLE_EQ(k2(64, 8), 7.0 / 63.0);
  EXPECT_DOUBLE_EQ(k2(10, 4), 3.0 / 9.0);
}

TEST(CriticalSets, K3MatchesPaperFormula) {
  // k3 = (R-1)(R-2)/((N-1)(N-2))
  EXPECT_DOUBLE_EQ(k3(64, 8), (7.0 * 6.0) / (63.0 * 62.0));
  EXPECT_DOUBLE_EQ(k3(10, 4), (3.0 * 2.0) / (9.0 * 8.0));
}

TEST(CriticalSets, CriticalFractionReducesToBinomialRatio) {
  for (int n = 6; n <= 20; ++n) {
    for (int r = 4; r <= n; ++r) {
      for (int j = 2; j <= 4 && j <= r; ++j) {
        const double expected = binomial(n - j, r - j) / binomial(n - 1, r - 1);
        EXPECT_NEAR(critical_fraction(n, r, j), expected, 1e-12 * expected)
            << "n=" << n << " r=" << r << " j=" << j;
      }
    }
  }
}

TEST(CriticalSets, CriticalFractionAgainstExhaustiveEnumeration) {
  // Count directly over all C(N, R) subsets: of the sets containing failed
  // node 0, what fraction also contains failed nodes 1..j-1?
  const int n = 9;
  const int r = 5;
  const auto sets = placement::enumerate_redundancy_sets(n, r);
  for (int j = 2; j <= 4; ++j) {
    int containing_first = 0;
    int containing_all = 0;
    for (const auto& set : sets) {
      const auto has = [&](int node) {
        return std::find(set.begin(), set.end(), node) != set.end();
      };
      if (!has(0)) continue;
      ++containing_first;
      bool all = true;
      for (int f = 1; f < j; ++f) all = all && has(f);
      if (all) ++containing_all;
    }
    const double empirical =
        static_cast<double>(containing_all) / containing_first;
    EXPECT_NEAR(critical_fraction(n, r, j), empirical, 1e-12) << "j=" << j;
  }
}

TEST(CriticalSets, CriticalFractionPreconditions) {
  EXPECT_THROW((void)critical_fraction(10, 4, 1), ContractViolation);
  EXPECT_THROW((void)critical_fraction(10, 4, 5), ContractViolation);
  EXPECT_THROW((void)critical_fraction(3, 4, 2), ContractViolation);
}

HParams baseline_h(int fault_tolerance) {
  HParams p;
  p.node_set_size = 64;
  p.redundancy_set_size = 8;
  p.drives_per_node = 12;
  p.fault_tolerance = fault_tolerance;
  p.capacity_bytes = 3e11;
  p.her_per_byte = 8e-14;
  return p;
}

TEST(HParams, BaseFt1MatchesPaper) {
  // FT1: h = (R-1) * C * HER.
  const HParams p = baseline_h(1);
  EXPECT_DOUBLE_EQ(h_base(p), 7.0 * 3e11 * 8e-14);
}

TEST(HParams, BaseFt2MatchesPaper) {
  // FT2: h = (R-1)(R-2)/(N-1) * C * HER.
  const HParams p = baseline_h(2);
  EXPECT_DOUBLE_EQ(h_base(p), 7.0 * 6.0 / 63.0 * 3e11 * 8e-14);
}

TEST(HParams, BaseFt3MatchesPaper) {
  // FT3: h = (R-1)(R-2)(R-3)/((N-1)(N-2)) * C * HER.
  const HParams p = baseline_h(3);
  EXPECT_DOUBLE_EQ(h_base(p), 7.0 * 6.0 * 5.0 / (63.0 * 62.0) * 3e11 * 8e-14);
}

TEST(HParams, Ft2WordTableMatchesPaper) {
  // h_NN = d*h, h_Nd = h_dN = h, h_dd = h/d (section 5.2.2).
  const HParams p = baseline_h(2);
  const double h = h_base(p);
  using K = FailureKind;
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kNode, K::kNode}), 12.0 * h);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kNode, K::kDrive}), h);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kDrive, K::kNode}), h);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kDrive, K::kDrive}), h / 12.0);
}

TEST(HParams, Ft3WordTableMatchesPaper) {
  const HParams p = baseline_h(3);
  const double h = h_base(p);
  using K = FailureKind;
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kNode, K::kNode, K::kNode}), 12.0 * h);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kNode, K::kNode, K::kDrive}), h);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kDrive, K::kNode, K::kNode}), h);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kNode, K::kDrive, K::kDrive}), h / 12.0);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kDrive, K::kDrive, K::kDrive}),
                   h / 144.0);
}

TEST(HParams, Ft1WordValuesMatchSection43) {
  // h_N = d*(R-1)*C*HER, h_d = (R-1)*C*HER.
  const HParams p = baseline_h(1);
  using K = FailureKind;
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kNode}), 12.0 * 7.0 * 3e11 * 8e-14);
  EXPECT_DOUBLE_EQ(h_for_word(p, {K::kDrive}), 7.0 * 3e11 * 8e-14);
}

TEST(HParams, WordLengthMustMatchFaultTolerance) {
  const HParams p = baseline_h(2);
  EXPECT_THROW((void)h_for_word(p, {FailureKind::kNode}), ContractViolation);
}

TEST(EnumerateWords, CountAndOrder) {
  const auto words = enumerate_words(2);
  ASSERT_EQ(words.size(), 4u);
  using K = FailureKind;
  EXPECT_EQ(words[0], (FailureWord{K::kNode, K::kNode}));
  EXPECT_EQ(words[1], (FailureWord{K::kNode, K::kDrive}));
  EXPECT_EQ(words[2], (FailureWord{K::kDrive, K::kNode}));
  EXPECT_EQ(words[3], (FailureWord{K::kDrive, K::kDrive}));
}

TEST(EnumerateWords, NPrefixedBeforeDPrefixedRecursively) {
  // The appendix's order: h^(k) = h_N . h^(k-1) ++ h_d . h^(k-1).
  const auto words = enumerate_words(3);
  ASSERT_EQ(words.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(words[i][0], FailureKind::kNode);
    EXPECT_EQ(words[i + 4][0], FailureKind::kDrive);
  }
  // Within each half, the tails repeat the length-2 enumeration.
  const auto tails = enumerate_words(2);
  for (std::size_t i = 0; i < 4; ++i) {
    const FailureWord tail_n(words[i].begin() + 1, words[i].end());
    EXPECT_EQ(tail_n, tails[i]);
  }
}

TEST(HSet, MatchesWordwiseEvaluation) {
  const HParams p = baseline_h(3);
  const auto values = h_set(p);
  const auto words = enumerate_words(3);
  ASSERT_EQ(values.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], h_for_word(p, words[i]));
  }
}

TEST(HSet, LinearValuesExceedOneOnlyAtFt1) {
  // The paper's linear hard-error model produces h_N = d(R-1)C*HER ~ 2 at
  // baseline fault tolerance 1 — not a valid probability, which is why the
  // exact chains saturate it (util::saturated_probability). From FT2 on,
  // the critical-fraction discount keeps every h_alpha below 1.
  const auto ft1 = h_set(baseline_h(1));
  EXPECT_GT(ft1.front(), 1.0);  // h_N = 2.016
  EXPECT_LT(ft1.back(), 1.0);   // h_d = 0.168
  for (int k = 2; k <= 4; ++k) {
    for (const double v : h_set(baseline_h(k))) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0) << "k=" << k;
    }
  }
}

TEST(HSet, SaturationPreservesSmallValuesAndCapsLargeOnes) {
  for (const double v : h_set(baseline_h(2))) {
    const double saturated = saturated_probability(v);
    EXPECT_GT(saturated, 0.0);
    EXPECT_LT(saturated, 1.0);
    EXPECT_LE(saturated, v);
    if (v < 0.01) {
      EXPECT_NEAR(saturated, v, 0.01 * v);
    }
  }
  EXPECT_LT(saturated_probability(2.016), 1.0);
  EXPECT_NEAR(saturated_probability(2.016), 0.8668, 1e-3);
}

}  // namespace
}  // namespace nsrel::combinat
