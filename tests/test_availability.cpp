// Tests for the availability extension: the renewal-reward identity
// A = MTTDL/(MTTDL + MTTR), structural properties of the repairable
// chain, and plausibility at the paper's baseline.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "ctmc/absorbing.hpp"
#include "models/availability.hpp"
#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "util/assert.hpp"

namespace nsrel::models {
namespace {

ctmc::Chain simple_loss_chain(double lambda, double mu) {
  ctmc::Chain c;
  const auto s0 = c.add_state("ok");
  const auto s1 = c.add_state("deg");
  const auto s2 = c.add_state("lost", ctmc::StateKind::kAbsorbing);
  c.add_transition(s0, s1, 2.0 * lambda);
  c.add_transition(s1, s0, mu);
  c.add_transition(s1, s2, lambda);
  return c;
}

TEST(Availability, MakeRepairableStructure) {
  const ctmc::Chain absorbing = simple_loss_chain(0.01, 1.0);
  const ctmc::Chain repairable =
      AvailabilityModel::make_repairable(absorbing, 0, PerHour(0.5));
  EXPECT_EQ(repairable.state_count(), absorbing.state_count());
  EXPECT_EQ(repairable.absorbing_count(), 0u);
  // One extra transition: the restore edge.
  EXPECT_EQ(repairable.transitions().size(),
            absorbing.transitions().size() + 1);
  EXPECT_DOUBLE_EQ(repairable.exit_rate(2), 0.5);
}

TEST(Availability, RenewalRewardIdentityHoldsExactly) {
  // A = MTTDL / (MTTDL + restore_time): cycles of up-time (mean MTTDL)
  // and down-time (mean restore_time) renew at each restore.
  for (const double restore_hours : {1.0, 24.0, 720.0}) {
    const ctmc::Chain absorbing = simple_loss_chain(0.01, 1.0);
    const double mttdl = ctmc::AbsorbingSolver::mttdl_hours(absorbing, 0);
    const AvailabilityResult result =
        AvailabilityModel::analyze(absorbing, 0, Hours(restore_hours));
    const double expected = mttdl / (mttdl + restore_hours);
    EXPECT_NEAR(result.availability, expected, 1e-9 * expected)
        << restore_hours;
    EXPECT_NEAR(result.mttdl.value(), mttdl, 1e-9 * mttdl);
  }
}

TEST(Availability, DowntimeMinutesConsistentWithAvailability) {
  const ctmc::Chain absorbing = simple_loss_chain(0.05, 0.5);
  const AvailabilityResult result =
      AvailabilityModel::analyze(absorbing, 0, Hours(48.0));
  EXPECT_NEAR(result.downtime_minutes_per_year,
              (1.0 - result.availability) * kHoursPerYear * 60.0, 1e-9);
}

TEST(Availability, DegradedFractionMatchesRateRatio) {
  // In the simple chain, long-run P(degraded)/P(ok) ~ 2*lambda/mu when
  // loss is rare.
  const double lambda = 1e-4;
  const double mu = 1.0;
  const ctmc::Chain absorbing = simple_loss_chain(lambda, mu);
  const AvailabilityResult result =
      AvailabilityModel::analyze(absorbing, 0, Hours(1.0));
  EXPECT_NEAR(result.degraded_fraction, 2.0 * lambda / mu,
              0.01 * 2.0 * lambda / mu);
}

TEST(Availability, BaselineNirFt2FiveNines) {
  // At the paper's baseline, FT2-NIR has MTTDL ~ 1.4e7 h; even a week-long
  // restore from backup leaves many nines of availability.
  const core::Analyzer analyzer(core::SystemConfig::baseline());
  const auto detail = analyzer.analyze({core::InternalScheme::kNone, 2});
  NoInternalRaidParams p;
  const auto& sys = analyzer.config();
  p.node_set_size = sys.node_set_size;
  p.redundancy_set_size = sys.redundancy_set_size;
  p.fault_tolerance = 2;
  p.drives_per_node = sys.drives_per_node;
  p.node_failure = rate_of(sys.node_mttf);
  p.drive_failure = rate_of(sys.drive.mttf);
  p.node_rebuild = detail.rebuild.node_rebuild_rate;
  p.drive_rebuild = detail.rebuild.drive_rebuild_rate;
  p.capacity = sys.drive.capacity;
  p.her_per_byte = sys.drive.her_per_byte;
  const NoInternalRaidModel model(p);
  const AvailabilityResult result = AvailabilityModel::analyze(
      model.chain(), NoInternalRaidModel::root_state(),
      Hours(7.0 * 24.0));
  EXPECT_GT(result.availability, 0.99998);
  EXPECT_LT(result.availability, 1.0);
  // The system is rebuilding a meaningful fraction of the time: 64 node
  // failures/400kh at ~5.3 h rebuilds plus 768 drive failures/300kh at
  // ~0.44 h rebuilds => ~0.2% of hours have a rebuild in flight.
  EXPECT_GT(result.degraded_fraction, 0.001);
  EXPECT_LT(result.degraded_fraction, 0.01);
}

TEST(Availability, ShorterRestoreImprovesAvailability) {
  const ctmc::Chain absorbing = simple_loss_chain(0.05, 0.5);
  const double fast =
      AvailabilityModel::analyze(absorbing, 0, Hours(1.0)).availability;
  const double slow =
      AvailabilityModel::analyze(absorbing, 0, Hours(100.0)).availability;
  EXPECT_GT(fast, slow);
}

TEST(Availability, ValidatesInputs) {
  const ctmc::Chain absorbing = simple_loss_chain(0.01, 1.0);
  EXPECT_THROW(
      (void)AvailabilityModel::make_repairable(absorbing, 2, PerHour(1.0)),
      ContractViolation);
  EXPECT_THROW(
      (void)AvailabilityModel::make_repairable(absorbing, 0, PerHour(0.0)),
      ContractViolation);
  EXPECT_THROW((void)AvailabilityModel::analyze(absorbing, 0, Hours(0.0)),
               ContractViolation);
}

}  // namespace
}  // namespace nsrel::models
