// Tests for the scrubbing model: calibration identity, bandwidth
// accounting, the reliability trade-off, and the existence of an interior
// optimum scrub period.
#include <cstddef>
#include <gtest/gtest.h>
#include <vector>

#include "core/analyzer.hpp"
#include "core/scrubbing.hpp"
#include "util/assert.hpp"

namespace nsrel::core {
namespace {

ScrubbingParams with_period(double hours) {
  ScrubbingParams p;
  p.period = Hours(hours);
  return p;
}

TEST(Scrubbing, CalibrationReproducesDatasheetHerAtReferenceLatency) {
  // Scrubbing exactly at the reference latency must leave HER unchanged.
  ScrubbingParams p;
  p.period = Hours(kHoursPerYear);
  p.reference_latency = Hours(kHoursPerYear);
  const ScrubbingModel model(p);
  const core::SystemConfig system = core::SystemConfig::baseline();
  const ScrubbingEffect e = model.effect(system);
  EXPECT_NEAR(e.effective_her_per_byte, system.drive.her_per_byte, 1e-25);
}

TEST(Scrubbing, EffectiveHerScalesLinearlyWithPeriod) {
  const core::SystemConfig system = core::SystemConfig::baseline();
  const double at_720 =
      ScrubbingModel(with_period(720.0)).effect(system).effective_her_per_byte;
  const double at_360 =
      ScrubbingModel(with_period(360.0)).effect(system).effective_her_per_byte;
  EXPECT_NEAR(at_720, 2.0 * at_360, 1e-12 * at_720);
}

TEST(Scrubbing, BandwidthAccounting) {
  // Monthly scrub of a 300 GB drive at 1 MiB commands (~31.9 MB/s
  // effective): a ~2.6 h pass every 720 h is ~0.36% of the drive.
  const core::SystemConfig system = core::SystemConfig::baseline();
  const ScrubbingEffect e =
      ScrubbingModel(with_period(720.0)).effect(system);
  EXPECT_NEAR(e.scrub_bandwidth_fraction, 0.0036, 0.0005);
  EXPECT_NEAR(e.rebuild_bandwidth_fraction,
              system.rebuild_bandwidth_fraction - e.scrub_bandwidth_fraction,
              1e-12);
}

TEST(Scrubbing, OverAggressiveScrubExhaustsBudgetAndThrows) {
  // A ~2.6 h pass every 10 hours needs 26% of the drive — more than the
  // 10% rebuild budget.
  const core::SystemConfig system = core::SystemConfig::baseline();
  EXPECT_THROW((void)ScrubbingModel(with_period(10.0)).effect(system),
               ContractViolation);
}

TEST(Scrubbing, ApplyProducesValidConfig) {
  const core::SystemConfig system = core::SystemConfig::baseline();
  const core::SystemConfig scrubbed =
      ScrubbingModel(with_period(720.0)).apply(system);
  EXPECT_NO_THROW(scrubbed.validate());
  EXPECT_LT(scrubbed.drive.her_per_byte, system.drive.her_per_byte);
  EXPECT_LT(scrubbed.rebuild_bandwidth_fraction,
            system.rebuild_bandwidth_fraction);
}

TEST(Scrubbing, MonthlyScrubImprovesHardErrorBoundConfigs) {
  // FT2-NIR at baseline is dominated by hard errors during rebuild, so a
  // monthly scrub (12x lower effective HER for ~4% less rebuild
  // bandwidth) must be a clear win.
  const core::SystemConfig baseline = core::SystemConfig::baseline();
  const core::SystemConfig scrubbed =
      ScrubbingModel(with_period(720.0)).apply(baseline);
  const core::Configuration config{core::InternalScheme::kNone, 2};
  const double before = core::Analyzer(baseline).events_per_pb_year(config);
  const double after = core::Analyzer(scrubbed).events_per_pb_year(config);
  EXPECT_LT(after, 0.5 * before);
}

TEST(Scrubbing, InteriorOptimumExists) {
  // Sweep the period: events/PB-yr should fall, bottom out, and rise
  // again as scrubbing starts starving rebuilds.
  const core::SystemConfig baseline = core::SystemConfig::baseline();
  const core::Configuration config{core::InternalScheme::kNone, 2};
  std::vector<double> events;
  const std::vector<double> periods{30.0, 60.0, 120.0, 480.0, 2000.0, 8766.0};
  for (const double period : periods) {
    const core::SystemConfig scrubbed =
        ScrubbingModel(with_period(period)).apply(baseline);
    events.push_back(core::Analyzer(scrubbed).events_per_pb_year(config));
  }
  // The best period is neither the shortest nor the longest probed.
  const auto best =
      std::min_element(events.begin(), events.end()) - events.begin();
  EXPECT_GT(best, 0) << "optimum at the aggressive end";
  EXPECT_LT(static_cast<std::size_t>(best), events.size() - 1)
      << "optimum at the lazy end";
}

TEST(Scrubbing, ValidatesParameters) {
  EXPECT_THROW(ScrubbingModel(with_period(0.0)), ContractViolation);
  ScrubbingParams p;
  p.reference_latency = Hours(0.0);
  EXPECT_THROW(ScrubbingModel{p}, ContractViolation);
}

}  // namespace
}  // namespace nsrel::core
