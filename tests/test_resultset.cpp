// Tests for the nsrel-resultset-v3 document layer: byte-exact
// write/read/write round-trips over analytic, simulation, failed-cell
// and cache-meta documents; strict typed errors on malformed or drifted
// schemas; and the diff engine behind `nsrel diff`.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "engine/testing.hpp"
#include "report/diff.hpp"
#include "report/json_parse.hpp"
#include "report/resultset_doc.hpp"
#include "util/error.hpp"

namespace nsrel::report {
namespace {

const std::vector<core::Configuration> kMixedConfigurations = {
    {core::InternalScheme::kNone, 2}, {core::InternalScheme::kRaid5, 2}};

std::string serialize(const ResultSetDoc& doc) {
  std::ostringstream out;
  write_resultset_json(doc, out);
  return out.str();
}

/// Evaluates `grid` and returns its canonical v3 bytes.
std::string document_bytes(const engine::Grid& grid,
                           const engine::JsonOptions& options = {}) {
  const engine::ResultSet results =
      engine::evaluate(grid, {.jobs = 1, .on_error = engine::OnError::kSkip});
  return serialize(engine::make_document(results, options));
}

/// write -> read -> write must reproduce the bytes exactly.
void expect_round_trip(const std::string& bytes) {
  const Expected<ResultSetDoc> reread = read_resultset_json(bytes);
  ASSERT_TRUE(reread.has_value()) << reread.error().message();
  EXPECT_EQ(serialize(reread.value()), bytes);
}

engine::Grid two_axis_grid() {
  std::vector<engine::AxisSpec> axes(2);
  axes[0].parameter = "drive-mttf";
  axes[0].values = {100e3, 500e3};
  axes[1].parameter = "link-gbps";
  axes[1].values = {1.0, 10.0};
  return engine::cartesian_sweep(core::SystemConfig::baseline(), axes,
                                 kMixedConfigurations);
}

// --- Round trips ------------------------------------------------------

TEST(RoundTrip, AnalyticTwoAxisDocument) {
  const std::string bytes = document_bytes(two_axis_grid());
  expect_round_trip(bytes);
  const ResultSetDoc doc = read_resultset_json(bytes).value();
  ASSERT_EQ(doc.axes.size(), 2u);
  EXPECT_EQ(doc.axes[0].name, "drive-mttf");
  EXPECT_EQ(doc.axes[1].name, "link-gbps");
  ASSERT_EQ(doc.points.size(), 4u);
  EXPECT_EQ(doc.points[0].x.size(), 2u);
  ASSERT_EQ(doc.cells.size(), 8u);
  EXPECT_TRUE(std::holds_alternative<AnalyticCellDoc>(doc.cells[0].data));
}

TEST(RoundTrip, SinglePointDocumentHasNoAxes) {
  const std::string bytes = document_bytes(engine::single_point(
      core::SystemConfig::baseline(), kMixedConfigurations));
  expect_round_trip(bytes);
  const ResultSetDoc doc = read_resultset_json(bytes).value();
  EXPECT_TRUE(doc.axes.empty());
  ASSERT_EQ(doc.points.size(), 1u);
  EXPECT_TRUE(doc.points[0].x.empty());
}

TEST(RoundTrip, SimulationDocument) {
  engine::Grid grid = two_axis_grid();
  engine::SimSpec spec;
  spec.trials = 32;
  spec.seed = 7;
  grid.simulation = spec;
  const std::string bytes = document_bytes(grid);
  expect_round_trip(bytes);
  const ResultSetDoc doc = read_resultset_json(bytes).value();
  ASSERT_TRUE(std::holds_alternative<SimCellDoc>(doc.cells[0].data));
  const SimCellDoc& cell = std::get<SimCellDoc>(doc.cells[0].data);
  EXPECT_EQ(cell.trials, 32);
  EXPECT_EQ(cell.seed, 7u);  // cell_seed(seed, 0) == seed
}

TEST(RoundTrip, ExtremeSeedDigitsSurviveExactly) {
  // Seeds are uint64 and must round-trip as exact digit strings, not
  // through double (2^64 - 1 is not representable in a double).
  engine::Grid grid = engine::single_point(core::SystemConfig::baseline(),
                                           {kMixedConfigurations[0]});
  engine::SimSpec spec;
  spec.trials = 8;
  spec.seed = 18446744073709551615ULL;
  grid.simulation = spec;
  const std::string bytes = document_bytes(grid);
  EXPECT_NE(bytes.find("\"seed\": 18446744073709551615"), std::string::npos);
  expect_round_trip(bytes);
  const ResultSetDoc doc = read_resultset_json(bytes).value();
  EXPECT_EQ(std::get<SimCellDoc>(doc.cells[0].data).seed,
            18446744073709551615ULL);
}

TEST(RoundTrip, FailedCellsCarryTypedErrors) {
  engine::testing::clear_cell_faults();
  engine::testing::inject_cell_fault(0, 1, ErrorCode::kSingularGenerator);
  engine::testing::inject_cell_fault(2, 0, ErrorCode::kIllConditioned);
  const std::string bytes =
      document_bytes(engine::parameter_sweep(core::SystemConfig::baseline(),
                                             "drive-mttf",
                                             {100e3, 300e3, 500e3},
                                             kMixedConfigurations));
  engine::testing::clear_cell_faults();
  expect_round_trip(bytes);
  const ResultSetDoc doc = read_resultset_json(bytes).value();
  ASSERT_EQ(doc.cells.size(), 6u);
  EXPECT_FALSE(doc.cells[1].ok());
  EXPECT_EQ(std::get<ErrorCellDoc>(doc.cells[1].data).code,
            "singular_generator");
  EXPECT_FALSE(doc.cells[4].ok());
  EXPECT_EQ(std::get<ErrorCellDoc>(doc.cells[4].data).code,
            "ill_conditioned");
  EXPECT_TRUE(doc.cells[0].ok());
}

TEST(RoundTrip, CacheMetaDocument) {
  const std::string bytes =
      document_bytes(two_axis_grid(), {.cache_meta = true});
  EXPECT_NE(bytes.find("\"meta\""), std::string::npos);
  expect_round_trip(bytes);
  const ResultSetDoc doc = read_resultset_json(bytes).value();
  ASSERT_TRUE(doc.cache.has_value());
  EXPECT_EQ(doc.cache->lookups, doc.cache->hits + doc.cache->misses);
}

// --- Malformed documents ----------------------------------------------

/// Reads must fail with the typed kMalformedDocument error; returns the
/// message so callers can pin the complaint.
std::string expect_malformed(const std::string& text) {
  const Expected<ResultSetDoc> result = read_resultset_json(text);
  EXPECT_FALSE(result.has_value());
  if (result.has_value()) return std::string();
  EXPECT_EQ(result.error().code, ErrorCode::kMalformedDocument);
  return result.error().message();
}

/// A valid document to mutate, plus string surgery helpers.
std::string valid_document() {
  return document_bytes(engine::single_point(core::SystemConfig::baseline(),
                                             {kMixedConfigurations[0]}));
}

std::string replaced(std::string text, const std::string& from,
                     const std::string& to) {
  const std::size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

TEST(Malformed, RejectsNonJson) {
  EXPECT_NE(expect_malformed("not json at all").find("malformed_document"),
            std::string::npos);
  (void)expect_malformed("");
  (void)expect_malformed("{\"schema\": ");  // truncated
}

TEST(Malformed, RejectsTrailingContent) {
  (void)expect_malformed(valid_document() + "{}");
}

TEST(Malformed, RejectsDuplicateKeys) {
  (void)expect_malformed(R"({"schema": "nsrel-resultset-v3",
                             "schema": "nsrel-resultset-v3"})");
}

TEST(Malformed, RejectsWrongSchemaTag) {
  const std::string message = expect_malformed(
      replaced(valid_document(), "nsrel-resultset-v3", "nsrel-resultset-v2"));
  EXPECT_NE(message.find("schema"), std::string::npos);
}

TEST(Malformed, RejectsUnknownAndMissingKeys) {
  (void)expect_malformed(
      replaced(valid_document(), "\"method\"", "\"mehtod\""));
  (void)expect_malformed(
      replaced(valid_document(), "\"mttdl_hours\"", "\"mttdl_parsecs\""));
}

TEST(Malformed, RejectsBadCellKind) {
  (void)expect_malformed(
      replaced(valid_document(), "\"kind\": \"analytic\"",
               "\"kind\": \"vibes\""));
}

TEST(Malformed, RejectsBadBottleneck) {
  (void)expect_malformed(replaced(valid_document(), "\"disk\"", "\"tape\""));
}

TEST(Malformed, RejectsCellIndexDrift) {
  // The single cell claims point 1 of a 1-point grid: both a range and
  // a row-major-order violation.
  (void)expect_malformed(
      replaced(valid_document(), "\"point\": 0", "\"point\": 1"));
}

TEST(Malformed, RejectsNonIntegerIndices) {
  (void)expect_malformed(
      replaced(valid_document(), "\"point\": 0", "\"point\": 0.5"));
  (void)expect_malformed(
      replaced(valid_document(), "\"point\": 0", "\"point\": -1"));
  (void)expect_malformed(
      replaced(valid_document(), "\"point\": 0", "\"point\": 00"));
}

TEST(Malformed, RejectsCoordinateCountMismatch) {
  // 1-axis document whose point carries 2 coordinates.
  const std::string one_axis =
      document_bytes(engine::parameter_sweep(core::SystemConfig::baseline(),
                                             "drive-mttf", {100e3, 500e3},
                                             {kMixedConfigurations[0]}));
  (void)expect_malformed(replaced(one_axis, "\"x\": [\n        100000\n      ]",
                                  "\"x\": [\n        100000,\n        1\n"
                                  "      ]"));
}

TEST(Malformed, RejectsDepthBomb) {
  std::string bomb;
  for (int i = 0; i < 80; ++i) bomb += '[';
  const std::string message = expect_malformed(bomb);
  EXPECT_NE(message.find("nesting"), std::string::npos);
}

// --- Diff -------------------------------------------------------------

ResultSetDoc parsed(const std::string& bytes) {
  Expected<ResultSetDoc> doc = read_resultset_json(bytes);
  EXPECT_TRUE(doc.has_value());
  return std::move(doc.value());
}

TEST(Diff, SelfCompareIsClean) {
  const std::string bytes = document_bytes(two_axis_grid());
  const Expected<DiffReport> report =
      diff_resultsets(parsed(bytes), parsed(bytes));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(report.value().cells, 8u);
}

TEST(Diff, NumericDriftIsNamedAndOrdered) {
  const ResultSetDoc a = parsed(document_bytes(two_axis_grid()));
  ResultSetDoc b = a;
  std::get<AnalyticCellDoc>(b.cells[5].data).mttdl_hours *= 1.0 + 1e-9;
  std::get<AnalyticCellDoc>(b.cells[2].data).events_per_pb_year *= 2.0;
  const DiffReport report = diff_resultsets(a, b).value();
  ASSERT_EQ(report.rows.size(), 2u);
  // Row-major cell order, regardless of mutation order above.
  EXPECT_EQ(report.rows[0].field, "events_per_pb_year");
  EXPECT_EQ(report.rows[0].point, 1u);
  EXPECT_EQ(report.rows[0].configuration, 0u);
  EXPECT_EQ(report.rows[1].field, "mttdl_hours");
  EXPECT_TRUE(report.rows[1].numeric);
  EXPECT_GT(report.rows[1].rel_delta, 0.0);
}

TEST(Diff, TolerancesSuppressSmallDrift) {
  const ResultSetDoc a = parsed(document_bytes(two_axis_grid()));
  ResultSetDoc b = a;
  std::get<AnalyticCellDoc>(b.cells[0].data).mttdl_hours *= 1.0 + 1e-12;
  EXPECT_FALSE(diff_resultsets(a, b).value().clean());
  EXPECT_TRUE(diff_resultsets(a, b, {.rel_tol = 1e-9}).value().clean());
  // abs_tol is an absolute floor: big enough swallows the delta too.
  const double delta =
      std::get<AnalyticCellDoc>(b.cells[0].data).mttdl_hours -
      std::get<AnalyticCellDoc>(a.cells[0].data).mttdl_hours;
  EXPECT_TRUE(
      diff_resultsets(a, b, {.abs_tol = delta * 2.0}).value().clean());
}

TEST(Diff, IdentityFieldsCompareExactly) {
  engine::Grid grid = engine::single_point(core::SystemConfig::baseline(),
                                           {kMixedConfigurations[0]});
  engine::SimSpec spec;
  spec.trials = 16;
  spec.seed = 5;
  grid.simulation = spec;
  const ResultSetDoc a = parsed(document_bytes(grid));
  ResultSetDoc b = a;
  std::get<SimCellDoc>(b.cells[0].data).seed = 6;
  std::get<SimCellDoc>(b.cells[0].data).trials = 17;
  const DiffReport report = diff_resultsets(a, b).value();
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].field, "trials");
  EXPECT_EQ(report.rows[1].field, "seed");
  EXPECT_EQ(report.rows[1].a, "5");
  EXPECT_EQ(report.rows[1].b, "6");
}

TEST(Diff, KindMismatchIsDriftNotError) {
  // Same shape, one run analytic and one simulated: comparable, but
  // every cell drifts on "kind".
  engine::Grid grid = engine::single_point(core::SystemConfig::baseline(),
                                           {kMixedConfigurations[0]});
  const ResultSetDoc a = parsed(document_bytes(grid));
  engine::SimSpec spec;
  spec.trials = 16;
  grid.simulation = spec;
  const ResultSetDoc b = parsed(document_bytes(grid));
  const DiffReport report = diff_resultsets(a, b).value();
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].field, "kind");
  EXPECT_EQ(report.rows[0].a, "analytic");
  EXPECT_EQ(report.rows[0].b, "sim");
}

TEST(Diff, ShapeMismatchIsTypedError) {
  const ResultSetDoc two = parsed(document_bytes(two_axis_grid()));
  const ResultSetDoc one = parsed(document_bytes(engine::parameter_sweep(
      core::SystemConfig::baseline(), "drive-mttf", {100e3, 500e3},
      kMixedConfigurations)));
  const Expected<DiffReport> report = diff_resultsets(two, one);
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code, ErrorCode::kInvalidParameter);
  EXPECT_NE(report.error().message().find("axis count"), std::string::npos);

  // Same shape but renamed configuration: also incomparable.
  ResultSetDoc renamed = two;
  renamed.configurations[0] = "FT9, Imaginary";
  EXPECT_FALSE(diff_resultsets(two, renamed).has_value());
}

TEST(Diff, RenderersAreDeterministic) {
  const ResultSetDoc a = parsed(document_bytes(two_axis_grid()));
  ResultSetDoc b = a;
  std::get<AnalyticCellDoc>(b.cells[0].data).mttdl_hours *= 2.0;
  const DiffReport report = diff_resultsets(a, b).value();
  std::ostringstream csv;
  diff_table(report).print_csv(csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "point,configuration,field,a,b,|delta|,rel");
  std::ostringstream json;
  write_diff_json(report, {}, json);
  EXPECT_NE(json.str().find("\"schema\": \"nsrel-diff-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"clean\": false"), std::string::npos);
  // The drift document is itself valid JSON.
  EXPECT_TRUE(parse_json(json.str()).has_value());
}

}  // namespace
}  // namespace nsrel::report
