// Cross-module integration tests: the full pipeline from hardware
// parameters through rebuild rates, array rates and node-level chains to
// normalized events/PB-year, plus an erasure-coded "mini system" exercise
// that ties placement, coding and the reliability model together.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/analyzer.hpp"
#include "ctmc/absorbing.hpp"
#include "ctmc/transient.hpp"
#include "erasure/reed_solomon.hpp"
#include "models/no_internal_raid.hpp"
#include "placement/layout.hpp"
#include "util/rng.hpp"

namespace nsrel {
namespace {

TEST(Integration, FullPipelineProducesFiniteOrderedResults) {
  const core::Analyzer analyzer(core::SystemConfig::baseline());
  double previous_events = 0.0;
  for (const auto& config : core::all_configurations()) {
    const auto result = analyzer.analyze(config);
    EXPECT_TRUE(std::isfinite(result.mttdl.value())) << core::name(config);
    EXPECT_GT(result.mttdl.value(), 0.0) << core::name(config);
    EXPECT_TRUE(std::isfinite(result.events_per_pb_year));
    EXPECT_GT(result.logical_capacity.value(), 0.0);
    // Configurations are FT-major ordered; within a block reliability can
    // vary, but FT3's best must beat FT1's best by orders of magnitude.
    (void)previous_events;
  }
  const double ft1_best = analyzer.events_per_pb_year(
      {core::InternalScheme::kRaid6, 1});
  const double ft3_worst = analyzer.events_per_pb_year(
      {core::InternalScheme::kNone, 3});
  EXPECT_GT(ft1_best, 100.0 * ft3_worst);
}

TEST(Integration, RebuildRatesFeedTheModelsConsistently) {
  const core::Analyzer analyzer(core::SystemConfig::baseline());
  const auto result = analyzer.analyze({core::InternalScheme::kNone, 2});
  // The NIR model consumed the planner's rates: rebuilding one drive is d
  // times faster than one node, and both are hours-scale.
  EXPECT_NEAR(result.rebuild.drive_rebuild_rate.value(),
              12.0 * result.rebuild.node_rebuild_rate.value(), 1e-9);
  EXPECT_GT(to_hours(result.rebuild.node_rebuild_time).value(), 1.0);
  EXPECT_LT(to_hours(result.rebuild.node_rebuild_time).value(), 24.0);
}

TEST(Integration, SurvivalCurveConsistentWithMttdl) {
  // Build the FT2-NIR chain at accelerated rates, and check the transient
  // solver's survival at t = MTTDL is within the exponential ballpark
  // (an absorbing chain dominated by one slow transition is ~memoryless).
  models::NoInternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = 2;
  p.drives_per_node = 3;
  p.node_failure = PerHour(0.002);
  p.drive_failure = PerHour(0.003);
  p.node_rebuild = PerHour(1.0);
  p.drive_rebuild = PerHour(3.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  const models::NoInternalRaidModel model(p);
  const auto chain = model.chain();
  const double mttdl = model.mttdl_exact().value();
  const ctmc::TransientSolver solver(chain);
  const double survival_at_mttdl =
      solver.survival(mttdl, models::NoInternalRaidModel::root_state());
  EXPECT_NEAR(survival_at_mttdl, std::exp(-1.0), 0.02);
}

TEST(Integration, ErasureCodedNodeSetSurvivesModeledFaults) {
  // A miniature end-to-end system: place stripes over N nodes with the
  // rotating layout, encode each with RS(R-t, t), fail t random nodes, and
  // verify every stripe reconstructs — the structural guarantee the
  // reliability model's "tolerates t node failures" premise rests on.
  Xoshiro256 rng(99);
  const int n = 16;
  const int r = 8;
  for (int t = 1; t <= 3; ++t) {
    const placement::RotatingPlacement layout({n, r});
    const erasure::ReedSolomonCode code(r - t, t);

    // Fail t distinct nodes.
    std::vector<bool> node_alive(static_cast<std::size_t>(n), true);
    int failed = 0;
    while (failed < t) {
      const auto victim = static_cast<std::size_t>(rng.below(n));
      if (!node_alive[victim]) continue;
      node_alive[victim] = false;
      ++failed;
    }

    for (std::uint64_t stripe = 0; stripe < 64; ++stripe) {
      // Build the stripe: k data shards + t parity on the layout's nodes.
      std::vector<erasure::Shard> data(static_cast<std::size_t>(r - t),
                                       erasure::Shard(32));
      for (auto& shard : data) {
        for (auto& byte : shard) {
          byte = static_cast<std::uint8_t>(rng.below(256));
        }
      }
      auto shards = data;
      auto parity = code.encode(data);
      shards.insert(shards.end(), parity.begin(), parity.end());

      const auto nodes = layout.nodes_for_stripe(stripe);
      std::vector<bool> present(static_cast<std::size_t>(r));
      auto damaged = shards;
      for (std::size_t i = 0; i < present.size(); ++i) {
        present[i] = node_alive[static_cast<std::size_t>(nodes[i])];
        if (!present[i]) damaged[i].assign(32, 0);
      }
      ASSERT_TRUE(code.recoverable(present)) << "t=" << t;
      EXPECT_EQ(code.reconstruct(damaged, present), shards)
          << "t=" << t << " stripe=" << stripe;
    }
  }
}

TEST(Integration, SpareLedgerSupportsFailInPlaceAssumption) {
  // At 75% utilization the baseline node set absorbs 16 node failures —
  // far beyond what the reliability model ever sees before repair, which
  // is why the model can treat spare capacity as never exhausted.
  const core::SystemConfig config = core::SystemConfig::baseline();
  placement::SpareLedger ledger(
      config.node_set_size,
      static_cast<double>(config.drives_per_node) *
          config.drive.capacity.value(),
      config.capacity_utilization);
  EXPECT_GE(ledger.failures_absorbable(), 10);
}

TEST(Integration, AbsorptionSplitIdentifiesDominantLossPath) {
  // For FT1-NIR at baseline, losses are dominated by hard errors during
  // rebuild (the reason FT1 fails the target so badly).
  const core::Analyzer analyzer(core::SystemConfig::baseline());
  const auto sys = core::SystemConfig::baseline();
  models::NoInternalRaidParams p;
  p.node_set_size = sys.node_set_size;
  p.redundancy_set_size = sys.redundancy_set_size;
  p.fault_tolerance = 1;
  p.drives_per_node = sys.drives_per_node;
  p.node_failure = rate_of(sys.node_mttf);
  p.drive_failure = rate_of(sys.drive.mttf);
  const auto rates = analyzer.planner(1).rates();
  p.node_rebuild = rates.node_rebuild_rate;
  p.drive_rebuild = rates.drive_rebuild_rate;
  p.capacity = sys.drive.capacity;
  p.her_per_byte = sys.drive.her_per_byte;

  const models::NoInternalRaidModel model(p);
  const auto chain = model.chain();
  const auto analysis = ctmc::AbsorbingSolver::analyze(
      chain, models::NoInternalRaidModel::root_state());
  // Occupancy of the root dominates (system is almost always healthy).
  const auto transient = chain.transient_states();
  const double total = analysis.mean_time_to_absorption_hours;
  double root_occupancy = 0.0;
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] == models::NoInternalRaidModel::root_state()) {
      root_occupancy = analysis.occupancy_hours[i];
    }
  }
  EXPECT_GT(root_occupancy / total, 0.99);
}

}  // namespace
}  // namespace nsrel
