// Fixture: iterating an unordered container (hash order escapes).
#include <string>
#include <unordered_map>
int total() {
  std::unordered_map<std::string, int> cells;
  int sum = 0;
  for (const auto& entry : cells) sum += entry.second;
  return sum;
}
