// Fixture: unordered container in an output-path file.
#include <string>
#include <unordered_map>
std::unordered_map<std::string, int> rows;
