// Fixture: catch-all outside the CLI top level.
int swallow() {
  try {
    return 1;
  } catch (...) {
    return 0;
  }
}
