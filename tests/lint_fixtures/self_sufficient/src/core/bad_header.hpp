// Fixture: header that does not compile standalone (missing <vector>).
#pragma once
inline std::vector<int> empty_values() { return {}; }
