// Fixture: one duplicate event name and one constant renamed against
// the stability table.
#pragma once
namespace nsrel::obs::event {
inline constexpr const char* kSolveStart = "solve.start";
inline constexpr const char* kSolveBegin = "solve.start";
inline constexpr const char* kCacheProbe = "cache.hit";
}  // namespace nsrel::obs::event
