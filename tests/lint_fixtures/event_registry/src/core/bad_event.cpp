// Fixture: journal event name as a string literal instead of a
// registry constant.
struct Event {};
Event seq_event(const char*);
Event journal() { return seq_event("cell.claim"); }
