// Fixture: nondeterministic seed source outside src/util/rng.*.
#include <random>
int entropy() {
  std::random_device device;
  return static_cast<int>(device());
}
