// Fixture: atomics-policy must fire on (a) an atomic with no registry
// row, (b) a bare default-seq_cst op on a registered relaxed probe,
// (c) an explicit non-relaxed order on a relaxed probe. The registry
// additionally carries a stale row (mirror violation) and the linter
// must flag it against tools/lint/atomics.tsv.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> unregistered_count{0};

std::atomic<bool> gate_{false};

std::atomic<std::uint64_t> probe_{0};

bool gate_on() {
  return gate_.load();  // bare op: defaults to seq_cst on a relaxed probe
}

void bump() {
  probe_.fetch_add(1, std::memory_order_acquire);  // wrong order for role
}

std::uint64_t read_unregistered() {
  return unregistered_count.load(std::memory_order_relaxed);
}
