// Fixture: ErrorCode reordered against the stability table.
#pragma once
namespace nsrel {
enum class ErrorCode : unsigned char {
  kBeta,
  kAlpha,
};
}
