// Fixture: names std::vector without directly including <vector>.
#include <cstddef>
std::size_t length() {
  std::vector<int> values;
  return values.size();
}
