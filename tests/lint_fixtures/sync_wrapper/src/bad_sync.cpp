// Fixture: sync-wrapper must fire on every raw standard primitive the
// annotated util/sync.hpp wrappers replace.
#include <condition_variable>
#include <mutex>

std::mutex raw_mutex;
std::condition_variable raw_cv;

void locked_region() {
  const std::lock_guard<std::mutex> lock(raw_mutex);
}

void waiting_region() {
  std::unique_lock<std::mutex> lock(raw_mutex);
  raw_cv.wait(lock, [] { return true; });
}
