// Fixture: two constants registering the same probe name.
#pragma once
inline constexpr const char* kHitsA = "cache.hits";
inline constexpr const char* kHitsB = "cache.hits";
