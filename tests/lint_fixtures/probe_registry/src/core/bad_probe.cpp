// Fixture: probe name as a string literal instead of a registry constant.
struct Registry { int counter(const char*); };
int probe() {
  Registry registry;
  return registry.counter("solve_cache.hits");
}
