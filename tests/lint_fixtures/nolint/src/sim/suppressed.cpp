// Fixture: a violation carrying a rule-named NOLINT must not fire.
#include <random>
int entropy() {
  // NOLINTNEXTLINE(rng-determinism): fixture proves suppression works
  std::random_device device;
  return static_cast<int>(device());
}
