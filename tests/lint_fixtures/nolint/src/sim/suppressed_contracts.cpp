// Fixture: rule-named NOLINT must suppress the concurrency-contract
// rules too (atomics-policy, expected-nodiscard, sync-wrapper).
#include <atomic>
#include <mutex>

// NOLINTNEXTLINE(atomics-policy): fixture proves suppression works
std::atomic<int> unregistered_but_suppressed{0};

// NOLINTNEXTLINE(sync-wrapper): fixture proves suppression works
std::mutex raw_but_suppressed;

// NOLINTNEXTLINE(expected-nodiscard): fixture proves suppression works
bool try_ignore_me(int x) { return x > 0; }

void caller() {
  // NOLINTNEXTLINE(expected-nodiscard): fixture proves suppression works
  try_ignore_me(1);
}
