// Fixture: expected-nodiscard must fire on (a) an Expected-returning
// function without [[nodiscard]], (b) a try_* function without
// [[nodiscard]], (c) a statement-level try_* call that discards the
// result — and must NOT fire on the continuation line of a wrapped
// assignment (the last function below).
template <typename T>
class Expected {
 public:
  Expected() = default;
};

Expected<double> solve_plain(int cell) {  // missing [[nodiscard]]
  (void)cell;
  return Expected<double>();
}

[[nodiscard]] Expected<double> solve_marked(int cell) {  // compliant
  (void)cell;
  return Expected<double>();
}

bool try_commit(int shard) {  // missing [[nodiscard]] on try_*
  return shard >= 0;
}

void caller() {
  try_commit(1);  // discarded try_* result
  (void)try_commit(2);  // (void)-cast discard is banned too
  const bool ok =
      try_commit(3);  // continuation of an assignment: not a discard
  (void)ok;
}
