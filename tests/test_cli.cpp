// Tests for the nsrel command-line tool: argument parsing, config
// mapping, and every command driven end-to-end against string streams.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "util/assert.hpp"

namespace nsrel::cli {
namespace {

Args make_args(std::initializer_list<const char*> tokens) {
  return Args(std::vector<std::string>(tokens.begin(), tokens.end()));
}

TEST(Args, ParsesCommandAndFlags) {
  const Args args = make_args({"analyze", "--n", "32", "--scheme", "none"});
  EXPECT_EQ(args.command(), "analyze");
  EXPECT_TRUE(args.has("n"));
  EXPECT_EQ(args.get_int("n", 64), 32);
  EXPECT_EQ(args.get_string("scheme", "raid5"), "none");
  EXPECT_EQ(args.get_int("ft", 2), 2);  // fallback
}

TEST(Args, EmptyCommandLine) {
  const Args args = make_args({});
  EXPECT_TRUE(args.command().empty());
}

TEST(Args, RejectsFlagWithoutValue) {
  EXPECT_THROW(make_args({"analyze", "--n"}), ContractViolation);
}

TEST(Args, RejectsStrayPositional) {
  EXPECT_THROW(make_args({"analyze", "oops"}), ContractViolation);
}

TEST(Args, RejectsMalformedNumbers) {
  const Args args = make_args({"analyze", "--n", "abc", "--x", "3.5"});
  EXPECT_THROW((void)args.get_double("n", 0.0), ContractViolation);
  EXPECT_THROW((void)args.get_int("x", 0), ContractViolation);  // non-integer
}

TEST(Args, TracksUnusedFlags) {
  const Args args = make_args({"analyze", "--n", "32", "--typo", "1"});
  (void)args.get_int("n", 64);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ConfigFromArgs, MapsFlagsOntoBaseline) {
  const Args args = make_args({"analyze", "--n", "32", "--drive-mttf", "1e5",
                               "--her-exp", "15", "--link-gbps", "5"});
  const core::SystemConfig config = config_from_args(args);
  EXPECT_EQ(config.node_set_size, 32);
  EXPECT_DOUBLE_EQ(config.drive.mttf.value(), 1e5);
  EXPECT_NEAR(config.drive.her_per_byte, 8e-15, 1e-25);
  EXPECT_DOUBLE_EQ(config.link.raw_speed.value(), 5e9);
  // Untouched fields keep the paper baseline.
  EXPECT_EQ(config.drives_per_node, 12);
  EXPECT_DOUBLE_EQ(config.capacity_utilization, 0.75);
}

TEST(ConfigFromArgs, InvalidValuesAreRejected) {
  const Args args = make_args({"analyze", "--util", "1.5"});
  EXPECT_THROW((void)config_from_args(args), ContractViolation);
}

TEST(ConfigurationFromArgs, SchemesAndFt) {
  EXPECT_EQ(configuration_from_args(make_args({"x", "--scheme", "none"}))
                .internal,
            core::InternalScheme::kNone);
  EXPECT_EQ(configuration_from_args(make_args({"x", "--scheme", "raid6",
                                               "--ft", "3"}))
                .node_fault_tolerance,
            3);
  EXPECT_THROW(
      (void)configuration_from_args(make_args({"x", "--scheme", "raid7"})),
      ContractViolation);
}

struct CommandResult {
  int exit_code;
  std::string out;
  std::string err;
};

CommandResult run(std::initializer_list<const char*> tokens) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = dispatch(make_args(tokens), out, err);
  return {code, out.str(), err.str()};
}

TEST(Dispatch, HelpAndUnknown) {
  const auto help = run({"help"});
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  const auto empty = run({});
  EXPECT_EQ(empty.exit_code, kExitUsage);
  const auto unknown = run({"frobnicate"});
  EXPECT_EQ(unknown.exit_code, kExitUsage);
  EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);
}

TEST(Dispatch, AnalyzeBaselineRaid5Ft2MeetsTarget) {
  const auto result = run({"analyze"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("FT2, Internal RAID 5"), std::string::npos);
  EXPECT_NE(result.out.find("(met)"), std::string::npos);
  EXPECT_NE(result.out.find("disk-bound"), std::string::npos);
}

TEST(Dispatch, AnalyzeNirFt1MissesTarget) {
  const auto result = run({"analyze", "--scheme", "none", "--ft", "1"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("MISSED"), std::string::npos);
}

TEST(Dispatch, AnalyzeClosedFormMethod) {
  const auto result = run({"analyze", "--method", "closed"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
}

TEST(Dispatch, AnalyzeRejectsTypos) {
  const auto result = run({"analyze", "--nodes", "32"});
  EXPECT_EQ(result.exit_code, kExitUsage);
  EXPECT_NE(result.err.find("--nodes"), std::string::npos);
}

TEST(Dispatch, CompareListsAllNine) {
  const auto result = run({"compare"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  for (const char* label :
       {"FT1, No Internal RAID", "FT2, Internal RAID 5",
        "FT3, Internal RAID 6"}) {
    EXPECT_NE(result.out.find(label), std::string::npos) << label;
  }
}

TEST(Dispatch, RebuildDecomposition) {
  const auto result = run({"rebuild"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("link crossover"), std::string::npos);
  EXPECT_NE(result.out.find("disk-bound"), std::string::npos);
}

TEST(Dispatch, SweepTableAndCsv) {
  const auto table = run({"sweep", "--param", "drive-mttf", "--from", "1e5",
                          "--to", "7.5e5", "--steps", "3"});
  EXPECT_EQ(table.exit_code, 0) << table.err;
  EXPECT_NE(table.out.find("drive-mttf"), std::string::npos);

  const auto csv = run({"sweep", "--param", "link-gbps", "--from", "1",
                        "--to", "10", "--steps", "3", "--csv", "1"});
  EXPECT_EQ(csv.exit_code, 0) << csv.err;
  EXPECT_NE(csv.out.find("link-gbps,MTTDL (h),events/PB-yr"),
            std::string::npos);
}

TEST(Dispatch, SweepRejectsUnknownParam) {
  const auto result = run({"sweep", "--param", "wombats"});
  EXPECT_EQ(result.exit_code, kExitUsage);
}

TEST(Dispatch, SweepAcceptsEveryCanonicalParameter) {
  // The old CLI hand-rolled seven parameters; the engine path accepts
  // everything core::set_parameter knows, e.g. util and bw-frac.
  const auto util = run({"sweep", "--param", "util", "--from", "0.5", "--to",
                         "0.9", "--steps", "3"});
  EXPECT_EQ(util.exit_code, 0) << util.err;
  EXPECT_NE(util.out.find("sweeping util"), std::string::npos);
  const auto bw = run({"sweep", "--param", "bw-frac", "--from", "0.05",
                       "--to", "0.2", "--steps", "3"});
  EXPECT_EQ(bw.exit_code, 0) << bw.err;
}

TEST(Dispatch, SweepFormatJsonAndJobsInvariance) {
  const auto serial =
      run({"sweep", "--param", "drive-mttf", "--from", "1e5", "--to",
           "7.5e5", "--steps", "4", "--format", "json", "--jobs", "1"});
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_NE(serial.out.find("\"schema\": \"nsrel-resultset-v3\""),
            std::string::npos);
  EXPECT_NE(serial.out.find("\"name\": \"drive-mttf\""), std::string::npos);
  const auto parallel =
      run({"sweep", "--param", "drive-mttf", "--from", "1e5", "--to",
           "7.5e5", "--steps", "4", "--format", "json", "--jobs", "8"});
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  EXPECT_EQ(serial.out, parallel.out);  // bit-identical across jobs
}

TEST(Dispatch, SweepRejectsUnknownFormat) {
  const auto result = run({"sweep", "--format", "xml"});
  EXPECT_EQ(result.exit_code, kExitUsage);
  EXPECT_NE(result.err.find("unknown output format"), std::string::npos);
}

TEST(Dispatch, AnalyzeAndCompareFormats) {
  const auto json = run({"analyze", "--format", "json"});
  EXPECT_EQ(json.exit_code, 0) << json.err;
  EXPECT_NE(json.out.find("\"mttdl_hours\""), std::string::npos);
  const auto csv = run({"analyze", "--format", "csv"});
  EXPECT_EQ(csv.exit_code, 0) << csv.err;
  EXPECT_NE(csv.out.find("configuration,MTTDL,events/PB-yr,meets"),
            std::string::npos);
  const auto compare_csv = run({"compare", "--format", "csv", "--jobs", "2"});
  EXPECT_EQ(compare_csv.exit_code, 0) << compare_csv.err;
  EXPECT_NE(compare_csv.out.find("configuration,MTTDL,events/PB-yr,meets"),
            std::string::npos);
  const auto compare_json = run({"compare", "--format", "json"});
  EXPECT_EQ(compare_json.exit_code, 0) << compare_json.err;
  EXPECT_NE(compare_json.out.find("\"axes\": []"), std::string::npos);
}

TEST(Dispatch, AvailabilityBothFamilies) {
  const auto nir = run({"availability", "--scheme", "none", "--ft", "2",
                        "--restore-hours", "24"});
  EXPECT_EQ(nir.exit_code, 0) << nir.err;
  EXPECT_NE(nir.out.find("availability:"), std::string::npos);
  const auto ir = run({"availability", "--scheme", "raid5", "--ft", "2"});
  EXPECT_EQ(ir.exit_code, 0) << ir.err;
}

TEST(Dispatch, ChainEmitsDot) {
  const auto nir = run({"chain", "--scheme", "none", "--ft", "2"});
  EXPECT_EQ(nir.exit_code, 0) << nir.err;
  EXPECT_NE(nir.out.find("digraph"), std::string::npos);
  EXPECT_NE(nir.out.find("doublecircle"), std::string::npos);
  // FT2-NIR has 7 transient states + "A": 8 node declarations.
  EXPECT_NE(nir.out.find("label=\"Nd\""), std::string::npos);
  const auto ir = run({"chain", "--scheme", "raid5", "--ft", "3"});
  EXPECT_EQ(ir.exit_code, 0) << ir.err;
  EXPECT_NE(ir.out.find("label=\"2_nodes_lost\""), std::string::npos);
}

// Accelerated system flags: short MTTFs keep trajectories to a handful
// of events so the Monte-Carlo command finishes instantly.
TEST(Dispatch, SimulateReportsEstimateAndAnalyticComparison) {
  const auto result =
      run({"simulate", "--scheme", "none", "--ft", "2", "--node-mttf", "500",
           "--drive-mttf", "300", "--trials", "400", "--jobs", "2",
           "--chunk", "64", "--seed", "5"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("simulated MTTDL:"), std::string::npos);
  EXPECT_NE(result.out.find("analytic MTTDL:"), std::string::npos);
  EXPECT_NE(result.out.find("trials:            400"), std::string::npos);
}

TEST(Dispatch, SimulateIsJobsInvariant) {
  const auto pick_estimate_lines = [](const std::string& text) {
    // Everything from the simulated-MTTDL line onward is jobs-independent
    // (the trials line above it prints the job count itself).
    return text.substr(text.find("simulated MTTDL:"));
  };
  const auto serial =
      run({"simulate", "--scheme", "raid5", "--ft", "2", "--node-mttf",
           "500", "--drive-mttf", "300", "--trials", "400", "--jobs", "1",
           "--seed", "5"});
  const auto parallel =
      run({"simulate", "--scheme", "raid5", "--ft", "2", "--node-mttf",
           "500", "--drive-mttf", "300", "--trials", "400", "--jobs", "4",
           "--seed", "5"});
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.err;
  EXPECT_EQ(pick_estimate_lines(serial.out),
            pick_estimate_lines(parallel.out));
}

TEST(Dispatch, SimulateAdaptiveStopsAtCiTarget) {
  const auto result =
      run({"simulate", "--scheme", "none", "--ft", "1", "--node-mttf", "500",
           "--drive-mttf", "300", "--trials", "256", "--ci-target", "0.1",
           "--max-trials", "100000", "--jobs", "2", "--seed", "7"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("95% CI:"), std::string::npos);
}

TEST(Dispatch, SimulateRejectsTypos) {
  const auto result = run({"simulate", "--job", "2"});
  EXPECT_EQ(result.exit_code, kExitUsage);
  EXPECT_NE(result.err.find("--job"), std::string::npos);
}

TEST(Dispatch, ScenarioCommandRequiresFile) {
  const auto missing = run({"scenario"});
  EXPECT_EQ(missing.exit_code, kExitUsage);
  const auto unreadable = run({"scenario", "--file", "/no/such/file"});
  EXPECT_EQ(unreadable.exit_code, kExitUsage);
  EXPECT_NE(unreadable.err.find("cannot open"), std::string::npos);
}

TEST(Dispatch, ProvisionPlansSpares) {
  const auto result = run({"provision", "--years", "5", "--confidence",
                           "0.95"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("node-equivalents"), std::string::npos);
  EXPECT_NE(result.out.find("max initial utilization"), std::string::npos);
}

TEST(Dispatch, ErrorsAreReportedNotThrown) {
  const auto result = run({"analyze", "--scheme", "raid9"});
  EXPECT_EQ(result.exit_code, kExitUsage);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(Dispatch, SweepWithDegenerateCellsReportsPartialResults) {
  // A sweep whose low endpoint degenerates the chain must still print
  // every healthy cell, mark the failed ones with their stable code,
  // report each failure on stderr, and exit with the partial-results
  // code — byte-identically at any --jobs.
  const auto serial = run({"sweep", "--param", "drive-mttf", "--from",
                           "1e-250", "--to", "3e5", "--steps", "4",
                           "--jobs", "1"});
  EXPECT_EQ(serial.exit_code, kExitPartialResults);
  EXPECT_NE(serial.out.find("!singular_generator"), std::string::npos);
  EXPECT_NE(serial.out.find("3.000e+05"), std::string::npos);
  EXPECT_NE(serial.err.find("cell(s) failed"), std::string::npos);
  EXPECT_NE(serial.err.find("singular_generator"), std::string::npos);
  const auto parallel = run({"sweep", "--param", "drive-mttf", "--from",
                             "1e-250", "--to", "3e5", "--steps", "4",
                             "--jobs", "8"});
  EXPECT_EQ(parallel.exit_code, kExitPartialResults);
  EXPECT_EQ(parallel.out, serial.out);
  EXPECT_EQ(parallel.err, serial.err);
}

TEST(Dispatch, SweepOverflowingToNonFinitePointsIsInvalidParameter) {
  // Geometric spacing from 1e-308 to 3e5 overflows the step ratio, so
  // the later points are infinite. Those cells must surface as
  // invalid_parameter, not crash or poison the run.
  const auto result = run({"sweep", "--param", "drive-mttf", "--from",
                           "1e-308", "--to", "3e5", "--steps", "4"});
  EXPECT_EQ(result.exit_code, kExitPartialResults);
  EXPECT_NE(result.out.find("!invalid_parameter"), std::string::npos);
  EXPECT_NE(result.err.find("invalid_parameter"), std::string::npos);
}

TEST(Dispatch, SweepOnErrorFailStopsAtTheFirstFailure) {
  const auto result = run({"sweep", "--param", "drive-mttf", "--from",
                           "1e-308", "--to", "3e5", "--steps", "4",
                           "--on-error", "fail"});
  EXPECT_EQ(result.exit_code, kExitInternal);
  EXPECT_NE(result.err.find("singular_generator"), std::string::npos);
  EXPECT_NE(result.err.find("point 0"), std::string::npos);
  const auto bad = run({"sweep", "--param", "n", "--from", "16", "--to",
                        "64", "--steps", "2", "--on-error", "explode"});
  EXPECT_EQ(bad.exit_code, kExitUsage);
}

TEST(Dispatch, RepeatedRunsAreByteIdentical) {
  // The determinism contract nsrel-lint polices statically, asserted
  // dynamically: re-running the same command in one process (warm solve
  // cache, reused thread pool, different heap layout) must reproduce
  // stdout and stderr byte-for-byte, serial and parallel alike.
  const auto first = run({"sweep", "--param", "node-mttf", "--from",
                          "1e4", "--to", "1e5", "--steps", "6",
                          "--jobs", "8"});
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto again = run({"sweep", "--param", "node-mttf", "--from",
                            "1e4", "--to", "1e5", "--steps", "6",
                            "--jobs", "8"});
    EXPECT_EQ(again.exit_code, first.exit_code);
    EXPECT_EQ(again.out, first.out);
    EXPECT_EQ(again.err, first.err);
  }
  const auto serial = run({"sweep", "--param", "node-mttf", "--from",
                           "1e4", "--to", "1e5", "--steps", "6",
                           "--jobs", "1"});
  EXPECT_EQ(serial.out, first.out);

  const auto sim_first = run({"simulate", "--node-mttf", "500",
                              "--drive-mttf", "300", "--trials", "300",
                              "--jobs", "4", "--seed", "11"});
  const auto sim_again = run({"simulate", "--node-mttf", "500",
                              "--drive-mttf", "300", "--trials", "300",
                              "--jobs", "4", "--seed", "11"});
  EXPECT_EQ(sim_again.out, sim_first.out);
}

// ---------------------------------------------------------------------
// Monte-Carlo sweeps: `simulate --param` rides the engine grid.

TEST(Dispatch, SimulateSweepTableAndJobsInvariance) {
  const auto table =
      run({"simulate", "--scheme", "none", "--ft", "2", "--node-mttf", "500",
           "--drive-mttf", "300", "--trials", "64", "--seed", "9", "--param",
           "drive-mttf", "--from", "200", "--to", "600", "--steps", "3"});
  EXPECT_EQ(table.exit_code, 0) << table.err;
  EXPECT_NE(table.out.find("sweeping drive-mttf"), std::string::npos);
  EXPECT_NE(table.out.find("sim MTTDL (h)"), std::string::npos);
  EXPECT_NE(table.out.find("95% CI (h)"), std::string::npos);

  const auto serial =
      run({"simulate", "--scheme", "none", "--ft", "2", "--node-mttf", "500",
           "--drive-mttf", "300", "--trials", "64", "--seed", "9", "--param",
           "drive-mttf", "--from", "200", "--to", "600", "--steps", "3",
           "--format", "json", "--jobs", "1"});
  const auto parallel =
      run({"simulate", "--scheme", "none", "--ft", "2", "--node-mttf", "500",
           "--drive-mttf", "300", "--trials", "64", "--seed", "9", "--param",
           "drive-mttf", "--from", "200", "--to", "600", "--steps", "3",
           "--format", "json", "--jobs", "8"});
  EXPECT_EQ(serial.exit_code, 0) << serial.err;
  EXPECT_EQ(serial.out, parallel.out);  // bit-identical across jobs
  EXPECT_NE(serial.out.find("\"kind\": \"sim\""), std::string::npos);
}

// ---------------------------------------------------------------------
// `nsrel diff`: compare two written result sets.

std::string write_temp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << bytes;
  return path;
}

CommandResult run_tokens(const std::vector<std::string>& tokens) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = dispatch(Args(tokens), out, err);
  return {code, out.str(), err.str()};
}

TEST(Diff, SelfCompareOfJobsVariantsExitsClean) {
  const auto serial =
      run({"sweep", "--param", "drive-mttf", "--from", "1e5", "--to", "7.5e5",
           "--steps", "4", "--format", "json", "--jobs", "1"});
  const auto parallel =
      run({"sweep", "--param", "drive-mttf", "--from", "1e5", "--to", "7.5e5",
           "--steps", "4", "--format", "json", "--jobs", "8"});
  const std::string a = write_temp("diff_a.json", serial.out);
  const std::string b = write_temp("diff_b.json", parallel.out);
  const auto result = run_tokens({"diff", a, b});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("no drift"), std::string::npos);
}

TEST(Diff, DriftExitsPartialResultsAndListsFields) {
  const auto base =
      run({"analyze", "--format", "json", "--scheme", "raid5", "--ft", "2"});
  const auto moved =
      run({"analyze", "--format", "json", "--scheme", "raid5", "--ft", "2",
           "--drive-mttf", "2.9e5"});
  const std::string a = write_temp("diff_base.json", base.out);
  const std::string b = write_temp("diff_moved.json", moved.out);
  const auto strict = run_tokens({"diff", a, b});
  EXPECT_EQ(strict.exit_code, kExitPartialResults);
  EXPECT_NE(strict.out.find("mttdl_hours"), std::string::npos);
  EXPECT_NE(strict.out.find("drifting field(s)"), std::string::npos);
  // A huge relative tolerance declares the same pair clean.
  const auto loose = run_tokens({"diff", a, b, "--rel-tol", "1e9"});
  EXPECT_EQ(loose.exit_code, 0) << loose.err;
  // CSV and JSON renderings carry the drift rows too.
  const auto csv = run_tokens({"diff", a, b, "--format", "csv"});
  EXPECT_EQ(csv.exit_code, kExitPartialResults);
  EXPECT_NE(csv.out.find("point,configuration,field"), std::string::npos);
  const auto json = run_tokens({"diff", a, b, "--format", "json"});
  EXPECT_NE(json.out.find("\"schema\": \"nsrel-diff-v1\""),
            std::string::npos);
}

TEST(Diff, UsageErrors) {
  // Wrong operand count.
  EXPECT_EQ(run({"diff"}).exit_code, kExitUsage);
  // Unreadable file.
  const auto missing =
      run_tokens({"diff", "/nonexistent/a.json", "/nonexistent/b.json"});
  EXPECT_EQ(missing.exit_code, kExitUsage);
  EXPECT_NE(missing.err.find("cannot open"), std::string::npos);
  // Malformed document: the typed reader error reaches stderr.
  const std::string bad = write_temp("diff_bad.json", "{\"schema\": 42}");
  const auto malformed = run_tokens({"diff", bad, bad});
  EXPECT_EQ(malformed.exit_code, kExitUsage);
  EXPECT_NE(malformed.err.find("malformed_document"), std::string::npos);
  // Incomparable shapes.
  const auto one = run({"analyze", "--format", "json"});
  const auto sweep = run({"sweep", "--param", "drive-mttf", "--from", "1e5",
                          "--to", "7.5e5", "--steps", "3", "--format",
                          "json"});
  const auto mismatch =
      run_tokens({"diff", write_temp("diff_one.json", one.out),
                  write_temp("diff_sweep.json", sweep.out)});
  EXPECT_EQ(mismatch.exit_code, kExitUsage);
  EXPECT_NE(mismatch.err.find("axis count mismatch"), std::string::npos);
}

}  // namespace
}  // namespace nsrel::cli
