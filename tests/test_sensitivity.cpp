// Tests for the analytic MTTA sensitivity solver: exact identities
// (time-rescaling elasticity = -1), agreement with central finite
// differences, and the paper's section-7 directions at baseline.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "ctmc/absorbing.hpp"
#include "ctmc/sensitivity.hpp"
#include "models/no_internal_raid.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {
namespace {

Chain repairable_pair(double lambda, double mu) {
  Chain c;
  const StateId s0 = c.add_state("ok");
  const StateId s1 = c.add_state("deg");
  const StateId s2 = c.add_state("loss", StateKind::kAbsorbing);
  c.add_transition(s0, s1, 2.0 * lambda);
  c.add_transition(s1, s0, mu);
  c.add_transition(s1, s2, lambda);
  return c;
}

/// Rebuilds the chain with matched transitions scaled by `theta` and
/// returns its MTTA — the reference for finite differences.
double mtta_scaled(const Chain& chain, StateId initial,
                   const SensitivitySolver::TransitionSelector& selector,
                   double theta) {
  Chain scaled;
  for (StateId s = 0; s < chain.state_count(); ++s) {
    scaled.add_state(chain.state(s).label, chain.state(s).kind);
  }
  for (const auto& t : chain.transitions()) {
    scaled.add_transition(t.from, t.to,
                          selector(t) ? t.rate * theta : t.rate);
  }
  return AbsorbingSolver::mttdl_hours(scaled, initial);
}

double finite_difference(const Chain& chain, StateId initial,
                         const SensitivitySolver::TransitionSelector& s) {
  const double h = 1e-6;
  return (mtta_scaled(chain, initial, s, 1.0 + h) -
          mtta_scaled(chain, initial, s, 1.0 - h)) /
         (2.0 * h);
}

TEST(Sensitivity, ScalingEverythingGivesElasticityMinusOne) {
  // MTTA(theta * all rates) = MTTA / theta exactly.
  const Chain c = repairable_pair(0.01, 5.0);
  const auto all = [](const Transition&) { return true; };
  EXPECT_NEAR(SensitivitySolver::mtta_elasticity(c, 0, all), -1.0, 1e-10);
}

TEST(Sensitivity, DerivativeMatchesFiniteDifference) {
  const Chain c = repairable_pair(0.02, 3.0);
  const auto failures = [](const Transition& t) { return t.rate < 1.0; };
  const auto repairs = [](const Transition& t) { return t.rate >= 1.0; };
  const double fd_failures = finite_difference(c, 0, failures);
  const double fd_repairs = finite_difference(c, 0, repairs);
  EXPECT_NEAR(SensitivitySolver::mtta_derivative(c, 0, failures), fd_failures,
              1e-4 * std::abs(fd_failures));
  EXPECT_NEAR(SensitivitySolver::mtta_derivative(c, 0, repairs), fd_repairs,
              1e-4 * std::abs(fd_repairs));
}

TEST(Sensitivity, SignsAreIntuitive) {
  const Chain c = repairable_pair(0.02, 3.0);
  // Faster failures -> shorter life; faster repairs -> longer life.
  const auto failures = [](const Transition& t) { return t.rate < 1.0; };
  const auto repairs = [](const Transition& t) { return t.rate >= 1.0; };
  EXPECT_LT(SensitivitySolver::mtta_derivative(c, 0, failures), 0.0);
  EXPECT_GT(SensitivitySolver::mtta_derivative(c, 0, repairs), 0.0);
}

TEST(Sensitivity, ElasticitiesDecomposeAcrossDisjointGroups) {
  // Sum of elasticities over a partition of all transitions = -1
  // (Euler's theorem: MTTA is homogeneous of degree -1 in the rates).
  const Chain c = repairable_pair(0.05, 2.0);
  const auto failures = [](const Transition& t) { return t.rate < 1.0; };
  const auto repairs = [](const Transition& t) { return t.rate >= 1.0; };
  const double sum = SensitivitySolver::mtta_elasticity(c, 0, failures) +
                     SensitivitySolver::mtta_elasticity(c, 0, repairs);
  EXPECT_NEAR(sum, -1.0, 1e-9);
}

TEST(Sensitivity, NirBaselineRepairElasticityNearFaultTolerance) {
  // MTTDL ~ mu^k in the closed form, so the repair elasticity at FT2
  // should be close to +2 (slightly below: mu also appears in h terms'
  // denominators only through the flows, not the chain).
  models::NoInternalRaidParams p;
  p.node_set_size = 16;
  p.redundancy_set_size = 8;
  p.fault_tolerance = 2;
  p.drives_per_node = 4;
  p.node_failure = PerHour(1e-5);
  p.drive_failure = PerHour(1e-5);
  p.node_rebuild = PerHour(0.5);
  p.drive_rebuild = PerHour(2.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 0.0;  // isolate the failure path
  const models::NoInternalRaidModel model(p);
  const auto chain = model.chain();
  const auto repairs = [](const Transition& t) { return t.rate >= 0.4; };
  const double elasticity = SensitivitySolver::mtta_elasticity(
      chain, models::NoInternalRaidModel::root_state(), repairs);
  EXPECT_NEAR(elasticity, 2.0, 0.1);
}

TEST(Sensitivity, ValidatesInputs) {
  const Chain c = repairable_pair(0.01, 1.0);
  EXPECT_THROW((void)SensitivitySolver::mtta_derivative(c, 2, nullptr),
               ContractViolation);
}

TEST(Sensitivity, TypedFormMatchesThrowingFormOnHealthyChains) {
  const Chain c = repairable_pair(0.02, 3.0);
  const auto all = [](const Transition&) { return true; };
  const auto typed = SensitivitySolver::try_mtta_derivative(c, 0, all);
  ASSERT_TRUE(typed.has_value());
  EXPECT_DOUBLE_EQ(typed.value(),
                   SensitivitySolver::mtta_derivative(c, 0, all));
  const auto elasticity = SensitivitySolver::try_mtta_elasticity(c, 0, all);
  ASSERT_TRUE(elasticity.has_value());
  EXPECT_NEAR(elasticity.value(), -1.0, 1e-10);
}

TEST(Sensitivity, NearSingularChainReportsIllConditioned) {
  // Six decades between repair and failure rates push the absorption
  // matrix rcond far below any strict guard: demanding rcond >= 0.5
  // must come back as a typed ill-conditioned error, not garbage.
  const Chain c = repairable_pair(1e-6, 1e3);
  NumericalGuards guards;
  guards.min_rcond = 0.5;
  const auto all = [](const Transition&) { return true; };
  const auto result = SensitivitySolver::try_mtta_derivative(c, 0, all,
                                                             guards);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kIllConditioned);
  EXPECT_EQ(result.error().layer, "ctmc.sensitivity");
  const auto elasticity =
      SensitivitySolver::try_mtta_elasticity(c, 0, all, guards);
  ASSERT_FALSE(elasticity.has_value());
  EXPECT_EQ(elasticity.error().code, ErrorCode::kIllConditioned);
}

TEST(Sensitivity, EmptySelectionHasZeroDerivative) {
  // A selector matching nothing: D = 0, so the derivative is exactly 0
  // (and the elasticity is 0 too — MTTA does not depend on theta).
  const Chain c = repairable_pair(0.05, 2.0);
  const auto none = [](const Transition&) { return false; };
  const auto derivative = SensitivitySolver::try_mtta_derivative(c, 0, none);
  ASSERT_TRUE(derivative.has_value());
  EXPECT_DOUBLE_EQ(derivative.value(), 0.0);
  const auto elasticity = SensitivitySolver::try_mtta_elasticity(c, 0, none);
  ASSERT_TRUE(elasticity.has_value());
  EXPECT_DOUBLE_EQ(elasticity.value(), 0.0);
}

}  // namespace
}  // namespace nsrel::ctmc
