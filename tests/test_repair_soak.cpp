// Long soak for the concurrent repair engine: tens of thousands of
// objects, a fault schedule that kills nodes and drives before, during,
// and after repair work — including sources and targets of in-flight
// repairs — while foreground src/workload traffic runs at every barrier
// (degraded-mode service). Invariants are asserted after every injected
// event and at the end; the whole thing runs with parallel decode
// (jobs = 8), which is what the TSan CI job exercises.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "brick/object_store.hpp"
#include "repair/fault_schedule.hpp"
#include "repair/repair.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace nsrel::repair {
namespace {

using brick::ObjectId;
using brick::ObjectStore;
using brick::StoreParams;

std::vector<std::uint8_t> random_bytes(std::size_t size, Xoshiro256& rng) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

TEST(RepairSoak, TensOfThousandsOfObjectsUnderInjectedFaults) {
  StoreParams p;
  p.node_count = 16;
  p.drives_per_node = 4;
  p.drive_capacity = kilobytes(1024.0);
  p.redundancy_set_size = 8;
  p.fault_tolerance = 2;
  p.chunk_size = Bytes(256.0);

  const int object_count = 20000;
  const std::size_t object_size = 6 * 256;  // one stripe per object

  ObjectStore store(p);
  Xoshiro256 rng(0x50A4);
  std::vector<ObjectId> objects;
  std::vector<std::size_t> sizes;
  // A sample of originals for byte-exact read checks at barriers.
  std::map<ObjectId, std::vector<std::uint8_t>> sample;
  objects.reserve(object_count);
  sizes.reserve(object_count);
  for (int i = 0; i < object_count; ++i) {
    const auto bytes = random_bytes(object_size, rng);
    const ObjectId id = store.write(bytes);
    objects.push_back(id);
    sizes.push_back(object_size);
    if (i % 500 == 0) sample[id] = bytes;
  }
  ASSERT_TRUE(store.fully_redundant());

  // Two initial failures (within t = 2), then a schedule that kills more
  // nodes and drives at task-count and time barriers mid-rebuild. The
  // node-13 event repeats node 2's death (no-op) and node 14 dies twice
  // via drive-then-node to exercise idempotence under load.
  store.fail_node(2);
  store.fail_drive(5, 1);
  const std::size_t initially_degraded = store.degraded_stripes().size();
  ASSERT_GT(initially_degraded, 5000u);

  const Expected<FaultSchedule> schedule = parse_fault_schedule(
      "after:1000 node:7; after:3000 drive:11.2; time:0.9 node:14; "
      "before:9000 drive:14.0; before:12000 node:2; after:15000 drive:0.3");
  ASSERT_TRUE(schedule.has_value());

  RepairOptions options;
  options.jobs = 8;
  options.timing.bytes_per_second = 4.0 * 1024.0 * 1024.0;

  // Degraded-mode service: run foreground workload reads at every
  // barrier, plus byte-exact checks of the sampled originals. Reads of
  // stripes that went beyond tolerance must fail typed, never throw.
  std::uint64_t barriers = 0;
  std::uint64_t foreground_reads = 0;
  std::uint64_t foreground_degraded = 0;
  std::uint64_t foreground_failed = 0;
  options.on_barrier = [&](ObjectStore& s, double sim_seconds) {
    EXPECT_GE(sim_seconds, 0.0);
    ++barriers;
    for (const auto& [id, bytes] : sample) {
      const Expected<std::vector<std::uint8_t>> read = s.try_read(id);
      if (read.has_value()) {
        EXPECT_EQ(read.value(), bytes) << "object " << id;
      } else {
        EXPECT_EQ(read.error().code, ErrorCode::kDataLoss);
      }
    }
    workload::WorkloadParams wl;
    wl.operations = 64;
    wl.read_bytes = 256;
    wl.seed = 0xF0E0 + barriers;  // deterministic but varying
    const workload::WorkloadResult result =
        workload::run_read_workload(s, objects, sizes, wl);
    foreground_reads += static_cast<std::uint64_t>(result.operations);
    foreground_degraded += result.degraded_reads;
    foreground_failed += result.failed_reads;
    EXPECT_GE(result.read_amplification, 1.0);
  };

  const RepairReport report =
      run_repair(store, schedule.value(), options);  // must not throw

  // Every scheduled event fired; five of the six changed state (the
  // node-2 repeat is the deliberate no-op).
  EXPECT_EQ(report.injected_faults, 5u);
  EXPECT_GT(barriers, 0u);
  EXPECT_GT(foreground_reads, 0u);
  EXPECT_GT(foreground_degraded, 0u);  // service ran while degraded
  // Lost stripes surface to clients as counted typed failures, never as
  // exceptions out of the workload loop.
  EXPECT_EQ(foreground_failed > 0, report.stripes_failed > 0);
  EXPECT_GT(report.replans, 0u);
  EXPECT_GE(report.stripes_attempted, initially_degraded);
  EXPECT_GT(report.shards_repaired, 0u);

  // Final-state invariant: every stripe is either fully repaired or
  // recorded as a typed failure — nothing in between, nothing dropped.
  std::map<brick::StripeRef, bool> failed;
  for (const RepairOutcome& outcome : report.outcomes) {
    if (!outcome.result.has_value()) {
      EXPECT_EQ(outcome.result.error().code, ErrorCode::kDataLoss)
          << outcome.result.error().message();
      failed[outcome.stripe] = true;
    }
  }
  EXPECT_EQ(failed.size(), report.stripes_failed);
  for (const brick::StripeRef& ref : store.degraded_stripes()) {
    EXPECT_TRUE(failed.contains(ref))
        << "stripe left degraded without a typed outcome: object "
        << ref.object << " stripe " << ref.stripe;
  }

  // Accounting closes: received bytes equal repaired shards x chunk.
  double received = 0.0;
  for (const auto& [node, bytes] : report.received_bytes) received += bytes;
  EXPECT_DOUBLE_EQ(received,
                   static_cast<double>(report.shards_repaired) * 256.0);
  EXPECT_DOUBLE_EQ(report.bytes_reconstructed, received);
  EXPECT_GT(report.duration_seconds, 0.0);

  // Every sampled object is either byte-identical or typed-lost.
  std::size_t lost_objects = 0;
  for (const auto& [id, bytes] : sample) {
    const Expected<std::vector<std::uint8_t>> read = store.try_read(id);
    if (read.has_value()) {
      EXPECT_EQ(read.value(), bytes);
    } else {
      EXPECT_EQ(read.error().code, ErrorCode::kDataLoss);
      ++lost_objects;
    }
  }
  // With four dead-node-equivalents out of 16 the failure matrix allows
  // losses, but the overwhelming majority of the sample must survive.
  EXPECT_LT(lost_objects, sample.size() / 2);
}

}  // namespace
}  // namespace nsrel::repair
