// Tests for the brick substrate: drive/node storage semantics, the object
// store's write/read/degraded-read/rebuild lifecycle, fail-in-place
// capacity behaviour, and the correspondence between measured rebuild
// traffic and section 5.1's flow model.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "brick/object_store.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nsrel::brick {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t size, Xoshiro256& rng) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

StoreParams small_params() {
  StoreParams p;
  p.node_count = 12;
  p.drives_per_node = 3;
  p.drive_capacity = kilobytes(256.0);
  p.redundancy_set_size = 6;
  p.fault_tolerance = 2;
  p.chunk_size = kilobytes(1.0);
  return p;
}

TEST(Drive, PutGetDropAccounting) {
  Drive drive{kilobytes(4.0)};
  EXPECT_TRUE(drive.put(1, Chunk(1024, 0xAA)));
  EXPECT_DOUBLE_EQ(drive.used_bytes(), 1024.0);
  ASSERT_TRUE(drive.get(1).has_value());
  EXPECT_EQ(drive.get(1)->at(0), 0xAA);
  drive.drop(1);
  EXPECT_DOUBLE_EQ(drive.used_bytes(), 0.0);
  EXPECT_FALSE(drive.get(1).has_value());
}

TEST(Drive, RejectsWhenFullOrDead) {
  Drive drive{Bytes(1000.0)};
  EXPECT_FALSE(drive.put(1, Chunk(2000, 0)));  // too big
  EXPECT_TRUE(drive.put(2, Chunk(800, 0)));
  EXPECT_FALSE(drive.put(3, Chunk(300, 0)));  // would exceed
  drive.fail();
  EXPECT_FALSE(drive.alive());
  EXPECT_FALSE(drive.get(2).has_value());  // fail-in-place: unreadable
  EXPECT_FALSE(drive.put(4, Chunk(10, 0)));
}

TEST(Node, SpreadsChunksAcrossDrives) {
  Node node(0, 3, Bytes(10000.0));
  for (ChunkId id = 1; id <= 9; ++id) {
    ASSERT_TRUE(node.put(id, Chunk(1000, 0)).has_value());
  }
  // Least-loaded placement: 3 chunks per drive.
  for (int d = 0; d < 3; ++d) EXPECT_EQ(node.drive(d).chunk_count(), 3u);
}

TEST(Node, DriveFailureLosesOnlyThatDrive) {
  Node node(0, 2, Bytes(10000.0));
  const int d1 = *node.put(1, Chunk(100, 0x11));
  const int d2 = *node.put(2, Chunk(100, 0x22));
  ASSERT_NE(d1, d2);  // least-loaded alternates
  node.fail_drive(d1);
  EXPECT_FALSE(node.get(d1, 1).has_value());
  EXPECT_TRUE(node.get(d2, 2).has_value());
  EXPECT_TRUE(node.alive());
}

TEST(Node, NodeFailureLosesEverything) {
  Node node(0, 2, Bytes(10000.0));
  const int d = *node.put(1, Chunk(100, 0));
  node.fail();
  EXPECT_FALSE(node.get(d, 1).has_value());
  EXPECT_DOUBLE_EQ(node.capacity_bytes(), 0.0);
  EXPECT_FALSE(node.put(2, Chunk(100, 0)).has_value());
}

TEST(ObjectStore, WriteReadRoundTripVariousSizes) {
  Xoshiro256 rng(41);
  ObjectStore store(small_params());
  // Exact multiples, sub-chunk, and padding cases.
  for (const std::size_t size : {1ul, 100ul, 1024ul, 4096ul, 10000ul}) {
    const auto bytes = random_bytes(size, rng);
    const ObjectId id = store.write(bytes);
    EXPECT_EQ(store.read(id), bytes) << size;
  }
  EXPECT_TRUE(store.fully_redundant());
}

TEST(ObjectStore, ReadsSurviveUpToTFailures) {
  Xoshiro256 rng(42);
  ObjectStore store(small_params());
  const auto bytes = random_bytes(20000, rng);
  const ObjectId id = store.write(bytes);
  store.fail_node(0);
  EXPECT_EQ(store.read(id), bytes);
  store.fail_node(1);
  EXPECT_EQ(store.read(id), bytes);  // t = 2: still fine
  EXPECT_FALSE(store.fully_redundant());
}

TEST(ObjectStore, DriveFailureDegradesOnlySomeStripes) {
  Xoshiro256 rng(43);
  ObjectStore store(small_params());
  const auto bytes = random_bytes(30000, rng);
  const ObjectId id = store.write(bytes);
  store.fail_drive(2, 0);
  store.fail_drive(5, 1);
  EXPECT_EQ(store.read(id), bytes);
}

TEST(ObjectStore, BeyondToleranceThrowsDataLoss) {
  Xoshiro256 rng(44);
  StoreParams p = small_params();
  p.node_count = 6;
  p.redundancy_set_size = 6;  // every stripe touches every node
  ObjectStore store(p);
  const ObjectId id = store.write(random_bytes(5000, rng));
  store.fail_node(0);
  store.fail_node(1);
  store.fail_node(2);  // 3 > t = 2
  EXPECT_THROW((void)store.read(id), DataLossError);
  EXPECT_THROW((void)store.rebuild(), DataLossError);
}

TEST(ObjectStore, RebuildRestoresFullRedundancy) {
  Xoshiro256 rng(45);
  ObjectStore store(small_params());
  const auto bytes = random_bytes(40000, rng);
  const ObjectId id = store.write(bytes);
  store.fail_node(3);
  store.fail_drive(7, 2);
  ASSERT_FALSE(store.fully_redundant());

  const RebuildReport report = store.rebuild();
  EXPECT_GT(report.shards_rebuilt, 0u);
  EXPECT_TRUE(store.fully_redundant());
  EXPECT_EQ(store.read(id), bytes);

  // The rebuilt system tolerates t FRESH failures again.
  store.fail_node(8);
  store.fail_node(9);
  EXPECT_EQ(store.read(id), bytes);
}

TEST(ObjectStore, RebuildNeverPlacesTwoShardsOfAStripeOnOneNode) {
  Xoshiro256 rng(46);
  ObjectStore store(small_params());
  const ObjectId id = store.write(random_bytes(50000, rng));
  store.fail_node(0);
  store.fail_node(1);
  (void)store.rebuild();
  // Verified indirectly: after rebuilding, ANY further t failures must be
  // survivable, which requires shard-per-node distinctness.
  store.fail_node(2);
  store.fail_node(3);
  EXPECT_NO_THROW((void)store.read(id));
}

TEST(ObjectStore, RebuildTrafficMatchesSection51Flows) {
  // Section 5.1: rebuilding one node's worth of data reads R-t survivor
  // chunks per lost chunk, spread evenly over the survivors, and writes
  // the reconstructed chunks onto survivors' spare space.
  Xoshiro256 rng(47);
  StoreParams p = small_params();
  p.node_count = 16;
  ObjectStore store(p);
  (void)store.write(random_bytes(200000, rng));
  store.fail_node(5);
  const RebuildReport report = store.rebuild();

  const double total_sourced = std::accumulate(
      report.sourced_bytes.begin(), report.sourced_bytes.end(), 0.0,
      [](double acc, const auto& kv) { return acc + kv.second; });
  // Total sourced = (R - t) * reconstructed chunks (per section 5.1,
  // "total data received by all the N-1 nodes = R - t node's worth").
  EXPECT_NEAR(total_sourced,
              (p.redundancy_set_size - p.fault_tolerance) *
                  report.bytes_reconstructed,
              1e-9);
  // The failed node neither sources nor receives.
  EXPECT_EQ(report.sourced_bytes.count(5), 0u);
  EXPECT_EQ(report.received_bytes.count(5), 0u);
  // Received spreads over many survivors (even distribution of spare use).
  EXPECT_GT(report.received_bytes.size(), 4u);
}

TEST(ObjectStore, WritesFailCleanlyWhenTooFewLiveNodes) {
  Xoshiro256 rng(48);
  StoreParams p = small_params();
  p.node_count = 7;
  p.redundancy_set_size = 6;
  ObjectStore store(p);
  store.fail_node(0);
  store.fail_node(1);  // 5 live < R = 6
  EXPECT_THROW((void)store.write(random_bytes(1000, rng)),
               ContractViolation);
}

TEST(ObjectStore, UserBytesAccounting) {
  Xoshiro256 rng(49);
  ObjectStore store(small_params());
  (void)store.write(random_bytes(1234, rng));
  (void)store.write(random_bytes(4321, rng));
  EXPECT_DOUBLE_EQ(store.user_bytes(), 1234.0 + 4321.0);
}

TEST(ObjectStore, ValidatesParams) {
  StoreParams p = small_params();
  p.fault_tolerance = 6;  // t >= R
  EXPECT_THROW(ObjectStore{p}, ContractViolation);
  p = small_params();
  p.redundancy_set_size = 20;  // R > N
  EXPECT_THROW(ObjectStore{p}, ContractViolation);
}

}  // namespace
}  // namespace nsrel::brick
