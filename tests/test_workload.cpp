// Tests for the workload module: Zipf sampler statistics, partial-read
// correctness with I/O accounting, and the empirical degraded-read
// amplification vs the analytic DegradedModel prediction.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <utility>
#include <vector>

#include "brick/object_store.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace nsrel::workload {
namespace {

TEST(Zipf, UniformWhenExponentZero) {
  const ZipfSampler sampler(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(sampler.probability(k), 0.1, 1e-12);
  }
}

TEST(Zipf, SkewMatchesPowerLaw) {
  const ZipfSampler sampler(100, 1.0);
  // p(k) proportional to 1/(k+1): p(0)/p(9) == 10.
  EXPECT_NEAR(sampler.probability(0) / sampler.probability(9), 10.0, 1e-9);
}

TEST(Zipf, EmpiricalFrequenciesMatch) {
  const ZipfSampler sampler(5, 1.2);
  Xoshiro256 rng(51);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, sampler.probability(k),
                0.01)
        << k;
  }
}

TEST(Zipf, ValidatesInputs) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfSampler(5, -1.0), ContractViolation);
}

struct PopulatedStore {
  brick::ObjectStore store;
  std::vector<brick::ObjectId> ids;
  std::vector<std::size_t> sizes;
  std::vector<std::vector<std::uint8_t>> contents;
};

PopulatedStore make_store(int objects, std::size_t object_size,
                          std::uint64_t seed) {
  brick::StoreParams p;
  p.node_count = 16;
  p.drives_per_node = 3;
  p.drive_capacity = megabytes(2.0);
  p.redundancy_set_size = 8;
  p.fault_tolerance = 2;
  p.chunk_size = kilobytes(1.0);
  PopulatedStore result{brick::ObjectStore(p), {}, {}, {}};
  Xoshiro256 rng(seed);
  for (int i = 0; i < objects; ++i) {
    std::vector<std::uint8_t> bytes(object_size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    result.ids.push_back(result.store.write(bytes));
    result.sizes.push_back(bytes.size());
    result.contents.push_back(std::move(bytes));
  }
  return result;
}

TEST(ReadRange, ReturnsExactSlices) {
  PopulatedStore s = make_store(3, 20000, 61);
  Xoshiro256 rng(62);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t pick = rng.below(3);
    const std::size_t offset = rng.below(19000);
    const std::size_t length = 1 + rng.below(1000);
    const auto slice = s.store.read_range(s.ids[pick], offset, length);
    const std::vector<std::uint8_t> expected(
        s.contents[pick].begin() + static_cast<long>(offset),
        s.contents[pick].begin() + static_cast<long>(offset + length));
    ASSERT_EQ(slice, expected) << trial;
  }
}

TEST(ReadRange, ValidatesBounds) {
  PopulatedStore s = make_store(1, 5000, 63);
  EXPECT_THROW((void)s.store.read_range(s.ids[0], 0, 0), ContractViolation);
  EXPECT_THROW((void)s.store.read_range(s.ids[0], 4000, 2000),
               ContractViolation);
}

TEST(ReadRange, HealthyReadsCostOneChunkPerChunkTouched) {
  PopulatedStore s = make_store(2, 20000, 64);
  s.store.reset_io_stats();
  // One full chunk, aligned: exactly one physical read, no decode.
  (void)s.store.read_range(s.ids[0], 0, 1024);
  EXPECT_EQ(s.store.io_stats().chunk_reads, 1u);
  EXPECT_EQ(s.store.io_stats().decode_operations, 0u);
  // Crossing a chunk boundary: two reads.
  (void)s.store.read_range(s.ids[0], 1000, 100);
  EXPECT_EQ(s.store.io_stats().chunk_reads, 3u);
}

TEST(ReadRange, DegradedReadsFetchKSurvivorsAndDecode) {
  PopulatedStore s = make_store(2, 20000, 65);
  s.store.fail_node(0);
  s.store.reset_io_stats();
  // Sweep the whole object chunk-aligned: chunks on node 0 force k-wide
  // fetches; correctness is still exact.
  const auto bytes = s.store.read_range(s.ids[0], 0, s.sizes[0]);
  EXPECT_EQ(bytes, s.contents[0]);
  EXPECT_GT(s.store.io_stats().decode_operations, 0u);
  EXPECT_GT(s.store.io_stats().chunk_reads,
            s.sizes[0] / 1024 + 1);  // more than one read per chunk
}

TEST(Workload, HealthyAmplificationIsOne) {
  PopulatedStore s = make_store(8, 30000, 66);
  WorkloadParams params;
  params.operations = 400;
  params.read_bytes = 1024;
  const WorkloadResult result =
      run_read_workload(s.store, s.ids, s.sizes, params);
  EXPECT_NEAR(result.read_amplification, 1.0, 1e-9);
  EXPECT_EQ(result.degraded_reads, 0u);
}

TEST(Workload, DegradedAmplificationMatchesAnalyticModel) {
  // With one node of N down, a fraction ~1/N of chunk reads hit the dead
  // node and cost k = R-t fetches: amplification ~ 1 + (k-1)/N.
  PopulatedStore s = make_store(8, 30000, 67);
  s.store.fail_node(3);
  WorkloadParams params;
  params.operations = 4000;
  params.read_bytes = 1024;
  const WorkloadResult result =
      run_read_workload(s.store, s.ids, s.sizes, params);
  const double n = 16.0;
  const double k = 6.0;
  const double expected = 1.0 + (k - 1.0) / n;
  EXPECT_NEAR(result.read_amplification, expected, 0.12);
  EXPECT_GT(result.degraded_reads, 0u);
}

TEST(Workload, ZipfSkewStillReadsCorrectly) {
  PopulatedStore s = make_store(6, 20000, 68);
  WorkloadParams params;
  params.operations = 500;
  params.zipf_exponent = 1.5;
  params.read_bytes = 512;
  const WorkloadResult result =
      run_read_workload(s.store, s.ids, s.sizes, params);
  EXPECT_EQ(result.operations, 500);
  EXPECT_GT(result.io.logical_bytes, 0.0);
}

TEST(Workload, ValidatesInputs) {
  PopulatedStore s = make_store(2, 2000, 69);
  WorkloadParams params;
  params.read_bytes = 5000;  // larger than the objects
  EXPECT_THROW((void)run_read_workload(s.store, s.ids, s.sizes, params),
               ContractViolation);
}

}  // namespace
}  // namespace nsrel::workload
