// Consistency tests among the paper's printed formulas: the appendix's
// general theorem must reduce to the section-4.3 / Figure-12 closed forms
// for k = 1, 2, 3 — the reduction the paper asserts ("easily seen to be
// special cases").
#include <gtest/gtest.h>

#include "models/closed_forms.hpp"
#include "models/no_internal_raid.hpp"
#include "util/assert.hpp"

namespace nsrel::models {
namespace {

NoInternalRaidParams params(int k, int n = 64, int r = 8, int d = 12) {
  NoInternalRaidParams p;
  p.node_set_size = n;
  p.redundancy_set_size = r;
  p.fault_tolerance = k;
  p.drives_per_node = d;
  p.node_failure = PerHour(1.0 / 400'000.0);
  p.drive_failure = PerHour(1.0 / 300'000.0);
  p.node_rebuild = PerHour(0.19);
  p.drive_rebuild = PerHour(2.28);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

TEST(ClosedForms, TheoremReducesToFt1PrintedFormula) {
  const NoInternalRaidParams p = params(1);
  const double theorem = NoInternalRaidModel(p).mttdl_closed_form().value();
  const double printed = nir_ft1_printed(p).value();
  EXPECT_NEAR(theorem, printed, 1e-12 * printed);
}

TEST(ClosedForms, TheoremReducesToFt2PrintedFormula) {
  const NoInternalRaidParams p = params(2);
  const double theorem = NoInternalRaidModel(p).mttdl_closed_form().value();
  const double printed = nir_ft2_printed(p).value();
  EXPECT_NEAR(theorem, printed, 1e-12 * printed);
}

TEST(ClosedForms, TheoremReducesToFt3PrintedFormula) {
  const NoInternalRaidParams p = params(3);
  const double theorem = NoInternalRaidModel(p).mttdl_closed_form().value();
  const double printed = nir_ft3_printed(p).value();
  EXPECT_NEAR(theorem, printed, 1e-12 * printed);
}

class ReductionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReductionSweep, TheoremMatchesPrintedFormulasEverywhere) {
  const auto [n, r, d] = GetParam();
  for (int k = 1; k <= 3; ++k) {
    if (r <= k) continue;
    const NoInternalRaidParams p = params(k, n, r, d);
    const double theorem = NoInternalRaidModel(p).mttdl_closed_form().value();
    const double printed = k == 1   ? nir_ft1_printed(p).value()
                           : k == 2 ? nir_ft2_printed(p).value()
                                    : nir_ft3_printed(p).value();
    EXPECT_NEAR(theorem, printed, 1e-11 * printed)
        << "k=" << k << " n=" << n << " r=" << r << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionSweep,
    ::testing::Combine(::testing::Values(16, 64, 256),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(1, 8, 12, 32)));

TEST(ClosedForms, PrintedFormulasValidateFaultTolerance) {
  EXPECT_THROW((void)nir_ft1_printed(params(2)), ContractViolation);
  EXPECT_THROW((void)nir_ft2_printed(params(3)), ContractViolation);
  EXPECT_THROW((void)nir_ft3_printed(params(1)), ContractViolation);
}

TEST(ClosedForms, HigherToleranceAlwaysWins) {
  const double ft1 = nir_ft1_printed(params(1)).value();
  const double ft2 = nir_ft2_printed(params(2)).value();
  const double ft3 = nir_ft3_printed(params(3)).value();
  EXPECT_LT(ft1, ft2);
  EXPECT_LT(ft2, ft3);
}

TEST(ClosedForms, Ft2DenominatorTermsBothMatter) {
  // At baseline the hard-error term dominates the FT2 denominator; with
  // HER = 0 only the failure term remains, so MTTDL improves markedly.
  NoInternalRaidParams p = params(2);
  const double with_her = nir_ft2_printed(p).value();
  p.her_per_byte = 0.0;
  const double without_her = nir_ft2_printed(p).value();
  EXPECT_GT(without_her, 2.0 * with_her);
}

}  // namespace
}  // namespace nsrel::models
