// Property tests over RANDOM absorbing chains: the three solution paths
// (LU analysis, GTH elimination, trajectory simulation) and the transient
// solver must agree on chains they were never hand-tuned for. Also covers
// the DOT exporter.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ctmc/absorbing.hpp"
#include "ctmc/chain.hpp"
#include "ctmc/dot.hpp"
#include "ctmc/elimination.hpp"
#include "ctmc/transient.hpp"
#include "sim/chain_simulator.hpp"
#include "util/rng.hpp"

namespace nsrel::ctmc {
namespace {

/// A random absorbing chain: `transients` states plus 1-2 absorbing
/// states; every transient has a random out-degree; connectivity to
/// absorption is guaranteed by construction (state i always has an edge
/// to i+1, the last transient feeding the absorber).
Chain random_chain(std::size_t transients, Xoshiro256& rng) {
  Chain c;
  for (std::size_t i = 0; i < transients; ++i) {
    c.add_state("t" + std::to_string(i));
  }
  const StateId absorber_a =
      c.add_state("lossA", StateKind::kAbsorbing);
  const StateId absorber_b = c.add_state("lossB", StateKind::kAbsorbing);
  const auto random_rate = [&] { return 0.05 + rng.uniform() * 4.0; };
  // Forward spine guarantees absorption is reachable from everywhere.
  for (std::size_t i = 0; i + 1 < transients; ++i) {
    c.add_transition(i, i + 1, random_rate());
  }
  c.add_transition(transients - 1, absorber_a, random_rate());
  // Random extra edges (including back edges and direct absorptions).
  const std::size_t extra = 2 * transients;
  for (std::size_t e = 0; e < extra; ++e) {
    const StateId from = rng.below(transients);
    StateId to = rng.below(transients + 2);
    if (to == from) to = absorber_b;
    if (c.state(from).kind != StateKind::kTransient) continue;
    c.add_transition(from, to, random_rate());
  }
  return c;
}

class RandomChainTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomChainTest, LuAndEliminationAgree) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const Chain c = random_chain(3 + rng.below(10), rng);
  ASSERT_TRUE(c.validate().empty());
  const double via_lu =
      AbsorbingSolver::analyze(c, 0).mean_time_to_absorption_hours;
  const double via_elimination =
      EliminationSolver::mean_absorption_time_hours(c, 0);
  EXPECT_NEAR(via_elimination, via_lu, 1e-9 * via_lu);
}

TEST_P(RandomChainTest, AbsorptionProbabilitiesSumToOne) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const Chain c = random_chain(3 + rng.below(10), rng);
  const auto analysis = AbsorbingSolver::analyze(c, 0);
  double total = 0.0;
  for (const double prob : analysis.absorption_probability) {
    EXPECT_GE(prob, -1e-12);
    total += prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(RandomChainTest, OccupancyTimesAreNonNegativeAndSumToMtta) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1500);
  const Chain c = random_chain(3 + rng.below(10), rng);
  const auto analysis = AbsorbingSolver::analyze(c, 0);
  double sum = 0.0;
  for (const double tau : analysis.occupancy_hours) {
    EXPECT_GE(tau, -1e-12);
    sum += tau;
  }
  EXPECT_NEAR(sum, analysis.mean_time_to_absorption_hours, 1e-9 * sum);
}

TEST_P(RandomChainTest, IntegratedSurvivalMatchesMtta) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 2500);
  const Chain c = random_chain(3 + rng.below(6), rng);
  const double mtta = AbsorbingSolver::mttdl_hours(c, 0);
  const TransientSolver solver(c);
  // Trapezoid integral of the survival function out to 14 mean lifetimes.
  const double horizon = 14.0 * mtta;
  const int steps = 800;
  double integral = 0.0;
  double prev = 1.0;
  for (int i = 1; i <= steps; ++i) {
    const double t = horizon * i / steps;
    const double current = solver.survival(t, 0);
    integral += 0.5 * (prev + current) * (horizon / steps);
    prev = current;
  }
  EXPECT_NEAR(integral, mtta, 0.03 * mtta);
}

TEST_P(RandomChainTest, SimulatorAgreesWithSolver) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 3500);
  const Chain c = random_chain(3 + rng.below(6), rng);
  const double analytic = AbsorbingSolver::mttdl_hours(c, 0);
  sim::ChainSimulator simulator(c,
                                static_cast<std::uint64_t>(GetParam()) + 9000);
  const auto estimate = simulator.estimate(3000, 0);
  EXPECT_NEAR(estimate.mean_hours, analytic, 5.0 * estimate.stderr_hours);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainTest, ::testing::Range(0, 12));

TEST(Dot, RendersStatesAndTransitions) {
  Chain c;
  const StateId ok = c.add_state("ok");
  const StateId loss = c.add_state("data_loss", StateKind::kAbsorbing);
  c.add_transition(ok, loss, 0.125);
  const std::string dot = to_dot(c, {.graph_name = "fig", .rate_digits = 3});
  EXPECT_NE(dot.find("digraph \"fig\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("label=\"ok\""), std::string::npos);
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("1.25e-01"), std::string::npos);
}

TEST(Dot, EscapesQuotesInLabels) {
  Chain c;
  c.add_state("we\"ird");
  c.add_state("loss", StateKind::kAbsorbing);
  c.add_transition(0, 1, 1.0);
  const std::string dot = to_dot(c);
  EXPECT_NE(dot.find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace nsrel::ctmc
